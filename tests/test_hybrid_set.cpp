// HybridSet (common/hybrid_set.hpp): the sparse→dense membership set
// behind the tracker's per-item reached/liked sets. The contract under
// test: observable behavior is identical on both sides of the promotion
// threshold, iteration is always ascending, and promotion is a pure
// function of the member count (never of insertion order or timing).
#include "common/hybrid_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace whatsup {
namespace {

std::vector<std::size_t> members_of(const HybridSet& s) {
  std::vector<std::size_t> out;
  s.for_each_set([&out](std::size_t i) { out.push_back(i); });
  return out;
}

TEST(HybridSet, BasicSetTestCount) {
  HybridSet s(100);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.any());
  s.set(3);
  s.set(99);
  s.set(3);  // duplicate: no-op
  EXPECT_EQ(s.count(), 2u);
  EXPECT_TRUE(s.test(3));
  EXPECT_TRUE(s.test(99));
  EXPECT_FALSE(s.test(4));
  EXPECT_TRUE(s.any());
  EXPECT_FALSE(s.is_dense());
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.test(3));
}

TEST(HybridSet, PromotesAtThresholdAndKeepsMembership) {
  HybridSet s(4096);  // threshold = 4096/32 = 128
  ASSERT_EQ(s.promote_threshold(), 128u);
  for (std::size_t i = 0; i < 128; ++i) s.set(i * 3);
  EXPECT_FALSE(s.is_dense()) << "at the threshold the set must still be sparse";
  s.set(4000);  // crosses
  EXPECT_TRUE(s.is_dense());
  EXPECT_EQ(s.count(), 129u);
  for (std::size_t i = 0; i < 128; ++i) EXPECT_TRUE(s.test(i * 3));
  EXPECT_TRUE(s.test(4000));
  EXPECT_FALSE(s.test(1));
  // Dense memory charges the bitset, sparse charged the index array.
  EXPECT_GE(s.memory_bytes(), 4096u / 8);
}

TEST(HybridSet, TinyUniverseUsesFloorThreshold) {
  HybridSet s(64);  // 64/32 = 2 < 16 → floor of 16
  EXPECT_EQ(s.promote_threshold(), 16u);
  for (std::size_t i = 0; i < 16; ++i) s.set(i);
  EXPECT_FALSE(s.is_dense());
  s.set(20);
  EXPECT_TRUE(s.is_dense());
  EXPECT_EQ(s.count(), 17u);
}

TEST(HybridSet, IterationAscendingInBothRepresentations) {
  Rng rng(11);
  HybridSet s(2048);  // threshold 64
  std::vector<std::size_t> inserted;
  // Random insertion order; stop while still sparse.
  for (int i = 0; i < 50; ++i) {
    const std::size_t v = rng.index(2048);
    s.set(v);
    inserted.push_back(v);
  }
  ASSERT_FALSE(s.is_dense());
  std::sort(inserted.begin(), inserted.end());
  inserted.erase(std::unique(inserted.begin(), inserted.end()), inserted.end());
  EXPECT_EQ(members_of(s), inserted);

  // Push past the threshold and re-check: same ascending contract.
  for (int i = 0; i < 200; ++i) {
    const std::size_t v = rng.index(2048);
    s.set(v);
    inserted.push_back(v);
  }
  ASSERT_TRUE(s.is_dense());
  std::sort(inserted.begin(), inserted.end());
  inserted.erase(std::unique(inserted.begin(), inserted.end()), inserted.end());
  EXPECT_EQ(members_of(s), inserted);
}

TEST(HybridSet, RangeIterationMatchesFiltering) {
  Rng rng(23);
  for (const bool dense : {false, true}) {
    HybridSet s(1024);  // threshold 32
    const int inserts = dense ? 200 : 20;
    for (int i = 0; i < inserts; ++i) s.set(rng.index(1024));
    ASSERT_EQ(s.is_dense(), dense);
    const std::vector<std::size_t> all = members_of(s);
    for (const auto [lo, hi] :
         {std::pair<std::size_t, std::size_t>{0, 1024}, {0, 0}, {100, 500},
          {63, 65}, {1000, 1024}, {512, 512}}) {
      std::vector<std::size_t> want;
      for (const std::size_t v : all) {
        if (v >= lo && v < hi) want.push_back(v);
      }
      std::vector<std::size_t> got;
      s.for_each_set_in(lo, hi, [&got](std::size_t i) { got.push_back(i); });
      EXPECT_EQ(got, want) << "range [" << lo << ", " << hi << ") dense=" << dense;
    }
  }
}

TEST(HybridSet, IntersectCountAgainstBitsetBothSides) {
  Rng rng(31);
  DynBitset interest(512);
  for (int i = 0; i < 120; ++i) interest.set(rng.index(512));
  for (const bool dense : {false, true}) {
    HybridSet s(512);  // threshold 16
    const int inserts = dense ? 100 : 10;
    for (int i = 0; i < inserts; ++i) s.set(rng.index(512));
    ASSERT_EQ(s.is_dense(), dense);
    EXPECT_EQ(s.intersect_count(interest), s.to_bitset().intersect_count(interest));
  }
}

TEST(HybridSet, EqualityIsContentBasedAcrossRepresentations) {
  // Same members reached via different universes... same universe, one
  // sparse, one dense — only possible with different thresholds, so use
  // equal counts instead: equality must ignore insertion order.
  HybridSet a(1024), b(1024);
  for (const std::size_t v : {5u, 900u, 77u}) a.set(v);
  for (const std::size_t v : {77u, 5u, 900u}) b.set(v);
  EXPECT_EQ(a, b);
  b.set(6);
  EXPECT_FALSE(a == b);
  HybridSet c(2048);
  EXPECT_FALSE(a == c);  // different universe
}

TEST(HybridSet, FreezeKeepsEveryObservableIdentical) {
  Rng rng(53);
  for (const bool dense : {false, true}) {
    HybridSet s(2048);  // threshold 64
    const int inserts = dense ? 400 : 40;
    for (int i = 0; i < inserts; ++i) s.set(rng.index(2048));
    ASSERT_EQ(s.is_dense(), dense);
    const HybridSet reference = s;
    const std::vector<std::size_t> before = members_of(s);
    const bool froze = s.freeze();
    EXPECT_EQ(s.is_frozen(), froze);
    // Whether or not the freeze was adopted (it is only adopted when the
    // block is strictly smaller), contents must be unchanged.
    EXPECT_EQ(s, reference);
    EXPECT_EQ(members_of(s), before);
    EXPECT_EQ(s.count(), before.size());
    for (const std::size_t v : before) EXPECT_TRUE(s.test(v));
    EXPECT_FALSE(s.test(2047) && before.empty());
    std::vector<std::size_t> ranged;
    s.for_each_set_in(100, 1500, [&ranged](std::size_t i) { ranged.push_back(i); });
    std::vector<std::size_t> want;
    for (const std::size_t v : before) {
      if (v >= 100 && v < 1500) want.push_back(v);
    }
    EXPECT_EQ(ranged, want);
  }
}

TEST(HybridSet, FreezeShrinksSpilledSparseSets) {
  // A sparse set that spilled its inline buffer (k > 8, 4 bytes/member)
  // freezes into ~1-2 bytes/member for clustered ids.
  HybridSet s(100000);
  for (std::size_t i = 0; i < 500; ++i) s.set(1000 + i * 3);  // small deltas
  ASSERT_FALSE(s.is_dense());
  const std::size_t before_bytes = s.memory_bytes();
  ASSERT_TRUE(s.freeze());
  EXPECT_TRUE(s.is_frozen());
  EXPECT_LT(s.memory_bytes(), before_bytes);
  EXPECT_EQ(s.count(), 500u);
}

TEST(HybridSet, FreezeSkipsInlineAndEmptySets) {
  HybridSet empty(1024);
  EXPECT_FALSE(empty.freeze());  // nothing to gain
  HybridSet inline_small(1024);
  for (std::size_t i = 0; i < 4; ++i) inline_small.set(i * 10);
  EXPECT_FALSE(inline_small.freeze());  // inline storage has no heap to shed
  EXPECT_EQ(inline_small.count(), 4u);
}

TEST(HybridSet, WritesThawFrozenSetsCorrectly) {
  // A late delivery after the settle window must transparently thaw.
  HybridSet s(4096);
  for (std::size_t i = 0; i < 60; ++i) s.set(i * 60);
  ASSERT_TRUE(s.freeze());
  s.set(11);  // new member → thaw → insert
  EXPECT_FALSE(s.is_frozen());
  EXPECT_TRUE(s.test(11));
  EXPECT_EQ(s.count(), 61u);
  // Setting an EXISTING member of a frozen set stays frozen (no-op write).
  ASSERT_TRUE(s.freeze());
  s.set(60);
  EXPECT_TRUE(s.is_frozen());
  EXPECT_EQ(s.count(), 61u);
}

TEST(HybridSet, ThawRestoresRepresentationByCount) {
  // Below the promote threshold → sparse; above → dense. Same rule as
  // insertion-time promotion, so a freeze/thaw cycle is invisible.
  HybridSet sparse(4096);  // threshold 128
  for (std::size_t i = 0; i < 60; ++i) sparse.set(i * 60);
  ASSERT_TRUE(sparse.freeze());
  sparse.thaw();
  EXPECT_FALSE(sparse.is_dense());
  EXPECT_EQ(sparse.count(), 60u);

  HybridSet dense(4096);
  Rng rng(59);
  for (int i = 0; i < 600; ++i) dense.set(rng.index(4096));
  ASSERT_TRUE(dense.is_dense());
  const HybridSet reference = dense;
  if (dense.freeze()) {
    dense.thaw();
    EXPECT_TRUE(dense.is_dense());
    EXPECT_EQ(dense, reference);
  }
}

TEST(HybridSet, FrozenEqualityAndIntersectAcrossRepresentations) {
  Rng rng(61);
  HybridSet a(2048), b(2048);
  std::vector<std::size_t> values;
  for (int i = 0; i < 50; ++i) values.push_back(rng.index(2048));
  for (const std::size_t v : values) {
    a.set(v);
    b.set(v);
  }
  ASSERT_TRUE(a.freeze());
  EXPECT_EQ(a, b);  // frozen vs sparse
  EXPECT_EQ(b, a);
  DynBitset interest(2048);
  for (int i = 0; i < 300; ++i) interest.set(rng.index(2048));
  EXPECT_EQ(a.intersect_count(interest), b.intersect_count(interest));
  EXPECT_EQ(a.to_bitset(), b.to_bitset());
}

TEST(HybridSet, PromotionIndependentOfInsertionOrder) {
  Rng rng(47);
  std::vector<std::size_t> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.index(4096));
  HybridSet forward(4096), backward(4096);
  for (const std::size_t v : values) forward.set(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it) backward.set(*it);
  EXPECT_EQ(forward.is_dense(), backward.is_dense());
  EXPECT_EQ(forward, backward);
  EXPECT_EQ(members_of(forward), members_of(backward));
}

}  // namespace
}  // namespace whatsup
