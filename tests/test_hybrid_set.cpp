// HybridSet (common/hybrid_set.hpp): the sparse→dense membership set
// behind the tracker's per-item reached/liked sets. The contract under
// test: observable behavior is identical on both sides of the promotion
// threshold, iteration is always ascending, and promotion is a pure
// function of the member count (never of insertion order or timing).
#include "common/hybrid_set.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace whatsup {
namespace {

std::vector<std::size_t> members_of(const HybridSet& s) {
  std::vector<std::size_t> out;
  s.for_each_set([&out](std::size_t i) { out.push_back(i); });
  return out;
}

TEST(HybridSet, BasicSetTestCount) {
  HybridSet s(100);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.any());
  s.set(3);
  s.set(99);
  s.set(3);  // duplicate: no-op
  EXPECT_EQ(s.count(), 2u);
  EXPECT_TRUE(s.test(3));
  EXPECT_TRUE(s.test(99));
  EXPECT_FALSE(s.test(4));
  EXPECT_TRUE(s.any());
  EXPECT_FALSE(s.is_dense());
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.test(3));
}

TEST(HybridSet, PromotesAtThresholdAndKeepsMembership) {
  HybridSet s(4096);  // threshold = 4096/32 = 128
  ASSERT_EQ(s.promote_threshold(), 128u);
  for (std::size_t i = 0; i < 128; ++i) s.set(i * 3);
  EXPECT_FALSE(s.is_dense()) << "at the threshold the set must still be sparse";
  s.set(4000);  // crosses
  EXPECT_TRUE(s.is_dense());
  EXPECT_EQ(s.count(), 129u);
  for (std::size_t i = 0; i < 128; ++i) EXPECT_TRUE(s.test(i * 3));
  EXPECT_TRUE(s.test(4000));
  EXPECT_FALSE(s.test(1));
  // Dense memory charges the bitset, sparse charged the index array.
  EXPECT_GE(s.memory_bytes(), 4096u / 8);
}

TEST(HybridSet, TinyUniverseUsesFloorThreshold) {
  HybridSet s(64);  // 64/32 = 2 < 16 → floor of 16
  EXPECT_EQ(s.promote_threshold(), 16u);
  for (std::size_t i = 0; i < 16; ++i) s.set(i);
  EXPECT_FALSE(s.is_dense());
  s.set(20);
  EXPECT_TRUE(s.is_dense());
  EXPECT_EQ(s.count(), 17u);
}

TEST(HybridSet, IterationAscendingInBothRepresentations) {
  Rng rng(11);
  HybridSet s(2048);  // threshold 64
  std::vector<std::size_t> inserted;
  // Random insertion order; stop while still sparse.
  for (int i = 0; i < 50; ++i) {
    const std::size_t v = rng.index(2048);
    s.set(v);
    inserted.push_back(v);
  }
  ASSERT_FALSE(s.is_dense());
  std::sort(inserted.begin(), inserted.end());
  inserted.erase(std::unique(inserted.begin(), inserted.end()), inserted.end());
  EXPECT_EQ(members_of(s), inserted);

  // Push past the threshold and re-check: same ascending contract.
  for (int i = 0; i < 200; ++i) {
    const std::size_t v = rng.index(2048);
    s.set(v);
    inserted.push_back(v);
  }
  ASSERT_TRUE(s.is_dense());
  std::sort(inserted.begin(), inserted.end());
  inserted.erase(std::unique(inserted.begin(), inserted.end()), inserted.end());
  EXPECT_EQ(members_of(s), inserted);
}

TEST(HybridSet, RangeIterationMatchesFiltering) {
  Rng rng(23);
  for (const bool dense : {false, true}) {
    HybridSet s(1024);  // threshold 32
    const int inserts = dense ? 200 : 20;
    for (int i = 0; i < inserts; ++i) s.set(rng.index(1024));
    ASSERT_EQ(s.is_dense(), dense);
    const std::vector<std::size_t> all = members_of(s);
    for (const auto [lo, hi] :
         {std::pair<std::size_t, std::size_t>{0, 1024}, {0, 0}, {100, 500},
          {63, 65}, {1000, 1024}, {512, 512}}) {
      std::vector<std::size_t> want;
      for (const std::size_t v : all) {
        if (v >= lo && v < hi) want.push_back(v);
      }
      std::vector<std::size_t> got;
      s.for_each_set_in(lo, hi, [&got](std::size_t i) { got.push_back(i); });
      EXPECT_EQ(got, want) << "range [" << lo << ", " << hi << ") dense=" << dense;
    }
  }
}

TEST(HybridSet, IntersectCountAgainstBitsetBothSides) {
  Rng rng(31);
  DynBitset interest(512);
  for (int i = 0; i < 120; ++i) interest.set(rng.index(512));
  for (const bool dense : {false, true}) {
    HybridSet s(512);  // threshold 16
    const int inserts = dense ? 100 : 10;
    for (int i = 0; i < inserts; ++i) s.set(rng.index(512));
    ASSERT_EQ(s.is_dense(), dense);
    EXPECT_EQ(s.intersect_count(interest), s.to_bitset().intersect_count(interest));
  }
}

TEST(HybridSet, EqualityIsContentBasedAcrossRepresentations) {
  // Same members reached via different universes... same universe, one
  // sparse, one dense — only possible with different thresholds, so use
  // equal counts instead: equality must ignore insertion order.
  HybridSet a(1024), b(1024);
  for (const std::size_t v : {5u, 900u, 77u}) a.set(v);
  for (const std::size_t v : {77u, 5u, 900u}) b.set(v);
  EXPECT_EQ(a, b);
  b.set(6);
  EXPECT_FALSE(a == b);
  HybridSet c(2048);
  EXPECT_FALSE(a == c);  // different universe
}

TEST(HybridSet, PromotionIndependentOfInsertionOrder) {
  Rng rng(47);
  std::vector<std::size_t> values;
  for (int i = 0; i < 300; ++i) values.push_back(rng.index(4096));
  HybridSet forward(4096), backward(4096);
  for (const std::size_t v : values) forward.set(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it) backward.set(*it);
  EXPECT_EQ(forward.is_dense(), backward.is_dense());
  EXPECT_EQ(forward, backward);
  EXPECT_EQ(members_of(forward), members_of(backward));
}

}  // namespace
}  // namespace whatsup
