// Equivalence tests for the top-K view selection: View::assign_closest
// replaced the seed's shuffle + stable_sort with shuffle + nth_element +
// bounded sort. Under identical RNG streams the kept members — and their
// order — must be exactly what the seed implementation produced, with and
// without the similarity memo.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gossip/view.hpp"

namespace whatsup::gossip {
namespace {

Profile random_profile(Rng& rng, std::size_t entries, ItemId universe) {
  Profile p;
  for (std::size_t i = 0; i < entries; ++i) {
    p.set(rng.index(universe) + 1, static_cast<Cycle>(rng.index(40)),
          rng.bernoulli(0.5) ? 1.0 : 0.0);
  }
  return p;
}

// The seed implementation, verbatim: shuffle for tie-breaking, score, full
// stable sort by descending score, keep the first `capacity`.
std::vector<net::Descriptor> seed_assign_closest(std::vector<net::Descriptor> candidates,
                                                 const Profile& own_profile,
                                                 Metric metric, Rng& rng,
                                                 std::size_t capacity) {
  rng.shuffle(candidates);
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    scored.emplace_back(similarity(metric, own_profile, candidates[i].profile_ref()), i);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<net::Descriptor> kept;
  kept.reserve(std::min(capacity, candidates.size()));
  for (std::size_t r = 0; r < scored.size() && kept.size() < capacity; ++r) {
    kept.push_back(candidates[scored[r].second]);
  }
  return kept;
}

void expect_same_members(const View& view, const std::vector<net::Descriptor>& expected) {
  ASSERT_EQ(view.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(view.entries()[i].node, expected[i].node) << "position " << i;
    EXPECT_EQ(view.entries()[i].timestamp(), expected[i].timestamp()) << "position " << i;
  }
}

TEST(TopKSelect, MatchesSeedSortUnderFixedSeeds) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng setup(seed + 1000);
    const std::size_t n = setup.index(60);
    const std::size_t capacity = setup.index(24) + 1;
    const Profile own = random_profile(setup, 25, 80);
    std::vector<net::Descriptor> candidates;
    for (std::size_t i = 0; i < n; ++i) {
      candidates.push_back(net::make_descriptor(
          static_cast<NodeId>(i), static_cast<Cycle>(setup.index(50)),
          random_profile(setup, setup.index(30), 80)));
    }
    // Identical RNG streams for reference and implementation.
    Rng rng_ref(seed), rng_new(seed), rng_memo(seed);
    const auto expected =
        seed_assign_closest(candidates, own, Metric::kWup, rng_ref, capacity);

    View view(capacity);
    view.assign_closest(candidates, own, Metric::kWup, rng_new);
    expect_same_members(view, expected);

    SimilarityMemo memo;
    View view_memo(capacity);
    view_memo.assign_closest(candidates, own, Metric::kWup, rng_memo, &memo);
    expect_same_members(view_memo, expected);
    // Memoized rerun (warm memo, fresh rng): still identical.
    Rng rng_warm(seed);
    View view_warm(capacity);
    view_warm.assign_closest(candidates, own, Metric::kWup, rng_warm, &memo);
    expect_same_members(view_warm, expected);
  }
}

TEST(TopKSelect, MatchesSeedSortOnAllTies) {
  // Cold start: empty own profile, every similarity 0 — selection is pure
  // shuffle-based tie-breaking and must still match the seed exactly.
  const Profile own;
  std::vector<net::Descriptor> candidates;
  for (NodeId v = 0; v < 40; ++v) {
    candidates.push_back(net::make_descriptor(v, static_cast<Cycle>(v), Profile{}));
  }
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng_ref(seed), rng_new(seed);
    const auto expected = seed_assign_closest(candidates, own, Metric::kWup, rng_ref, 7);
    View view(7);
    view.assign_closest(candidates, own, Metric::kWup, rng_new);
    expect_same_members(view, expected);
  }
}

TEST(TopKSelect, CapacityLargerThanCandidates) {
  Rng setup(5);
  const Profile own = random_profile(setup, 10, 40);
  std::vector<net::Descriptor> candidates;
  for (NodeId v = 0; v < 5; ++v) {
    candidates.push_back(
        net::make_descriptor(v, 0, random_profile(setup, 8, 40)));
  }
  Rng rng_ref(9), rng_new(9);
  const auto expected = seed_assign_closest(candidates, own, Metric::kCosine, rng_ref, 20);
  View view(20);
  view.assign_closest(candidates, own, Metric::kCosine, rng_new);
  expect_same_members(view, expected);
}

}  // namespace
}  // namespace whatsup::gossip
