// Determinism contract of the sharded scheduler: a fixed seed produces a
// bit-identical trajectory — per-cycle metrics::Tracker digests AND
// traffic totals — for ANY worker-thread count, including under lossy /
// jittery / capacity-limited networks and under churn (nodes leaving and
// returning mid-run). See docs/architecture.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/runner.hpp"
#include "dataset/survey.hpp"
#include "metrics/tracker.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"
#include "sim/transport.hpp"
#include "whatsup/node.hpp"

namespace whatsup {
namespace {

constexpr std::uint64_t kSeed = 20260731;

std::vector<unsigned> thread_counts() {
  std::vector<unsigned> counts{1, 2, 4, 8};
  // CI widens the matrix with one more width (see ci.yml); values already
  // in the matrix are skipped rather than re-run.
  if (const char* env = std::getenv("WHATSUP_TEST_THREADS"); env != nullptr) {
    const int extra = std::atoi(env);
    if (extra > 0 && std::find(counts.begin(), counts.end(),
                               static_cast<unsigned>(extra)) == counts.end()) {
      counts.push_back(static_cast<unsigned>(extra));
    }
  }
  return counts;
}

struct Trajectory {
  std::vector<std::uint64_t> cycle_digests;
  std::vector<std::size_t> cycle_messages;
  double f1 = 0.0;

  bool operator==(const Trajectory&) const = default;
};

// One full WhatsUp deployment driven cycle by cycle, digesting the tracker
// after every cycle. `churn` flips a rotating slice of nodes off and back
// on every few cycles.
Trajectory run_trajectory(unsigned threads, const net::NetworkConfig& network,
                          bool churn) {
  Rng rng(kSeed);
  data::SurveyConfig sc;
  sc.base_users = 60;
  sc.base_items = 80;
  sc.replication = 2;
  data::Workload workload = data::make_survey(sc, rng);
  workload.schedule_publications(3, 40, rng);

  sim::Engine::Config ec;
  ec.seed = rng.next_u64();
  ec.network = network;
  ec.threads = threads;
  ec.shard_nodes = 16;  // force several shards even at this small scale
  sim::Engine engine(ec);

  analysis::WorkloadOpinions opinions(workload);
  WhatsUpConfig wu;
  wu.params.f_like = 6;
  const std::size_t n = workload.num_users();
  std::vector<WhatsUpAgent*> agents;
  for (NodeId v = 0; v < n; ++v) {
    auto agent = std::make_unique<WhatsUpAgent>(v, wu, opinions);
    agents.push_back(agent.get());
    engine.add_agent(std::move(agent));
  }
  for (NodeId v = 0; v < n; ++v) {
    std::vector<net::Descriptor> seed_view;
    for (int i = 0; i < wu.params.rps_view_size; ++i) {
      NodeId peer = v;
      while (peer == v) peer = static_cast<NodeId>(rng.index(n));
      seed_view.push_back(net::Descriptor{peer, -1, nullptr});
    }
    agents[v]->bootstrap_rps(std::move(seed_view));
  }

  metrics::Tracker tracker(n, workload.num_items());
  tracker.attach(engine);

  std::map<Cycle, std::vector<ItemIdx>> calendar;
  for (const data::NewsSpec& spec : workload.news) {
    calendar[spec.publish_at].push_back(spec.index);
  }

  Trajectory out;
  constexpr Cycle kTotal = 50;
  for (Cycle c = 0; c < kTotal; ++c) {
    if (churn && c >= 10 && c % 5 == 0) {
      // Rotate a 10-node slice offline; bring the previous slice back.
      const auto offline = static_cast<NodeId>(((c / 5) * 10) % n);
      const auto online = static_cast<NodeId>(((c / 5 - 1) * 10) % n);
      for (NodeId d = 0; d < 10; ++d) {
        engine.set_active((offline + d) % static_cast<NodeId>(n), false);
        engine.set_active((online + d) % static_cast<NodeId>(n), true);
      }
    }
    if (const auto it = calendar.find(c); it != calendar.end()) {
      for (ItemIdx item : it->second) {
        if (engine.is_active(workload.news[item].source)) {
          engine.publish(workload.news[item].source, item, workload.news[item].id);
        }
      }
    }
    engine.run_cycle();
    out.cycle_digests.push_back(tracker.digest());
    out.cycle_messages.push_back(engine.traffic().total_messages());
  }
  const auto reached = tracker.reached_sets();
  std::vector<ItemIdx> measured;
  for (const data::NewsSpec& spec : workload.news) measured.push_back(spec.index);
  out.f1 = metrics::compute_scores(workload, reached, measured).f1;
  return out;
}

void expect_identical_across_threads(const net::NetworkConfig& network, bool churn) {
  const std::vector<unsigned> counts = thread_counts();
  const Trajectory baseline = run_trajectory(counts.front(), network, churn);
  ASSERT_EQ(baseline.cycle_digests.size(), 50u);
  // The run must actually disseminate something, or the digests vacuously
  // agree.
  EXPECT_GT(baseline.cycle_messages.back(), 0u);
  for (std::size_t i = 1; i < counts.size(); ++i) {
    const Trajectory other = run_trajectory(counts[i], network, churn);
    EXPECT_EQ(baseline.cycle_digests, other.cycle_digests)
        << "tracker digests diverged at threads=" << counts[i];
    EXPECT_EQ(baseline.cycle_messages, other.cycle_messages)
        << "traffic diverged at threads=" << counts[i];
    EXPECT_EQ(baseline.f1, other.f1);
  }
}

TEST(Determinism, PerfectNetworkIdenticalAcrossThreadCounts) {
  expect_identical_across_threads(net::NetworkConfig{}, /*churn=*/false);
}

TEST(Determinism, LossyJitteryCapacityNetworkIdenticalAcrossThreadCounts) {
  net::NetworkConfig network;
  network.loss_rate = 0.08;
  network.latency = 2;
  network.jitter = 3;
  network.inbox_capacity = 25;
  expect_identical_across_threads(network, /*churn=*/false);
}

TEST(Determinism, ChurnIdenticalAcrossThreadCounts) {
  net::NetworkConfig network;
  network.loss_rate = 0.03;
  network.jitter = 1;
  expect_identical_across_threads(network, /*churn=*/true);
}

// Fault interactions: a regional partition with partial cross-loss,
// Gilbert–Elliott bursty links, jitter, duplication and reordering all
// active at once. Every fault draw comes from the engine stream in
// canonical commit order or from counter-based per-link chains, so the
// combined trajectory must stay a pure function of the seed.
TEST(Determinism, PartitionBurstJitterInteractionIdenticalAcrossThreadCounts) {
  net::NetworkConfig network;
  network.partition_nodes = 25;  // splits the 60-node population
  network.partition_cross_loss = 0.6;
  network.burst.p_enter = 0.1;
  network.burst.p_exit = 0.3;
  network.burst.loss_bad = 0.5;
  network.jitter = 2;
  network.duplicate_rate = 0.05;
  network.reorder_rate = 0.1;
  expect_identical_across_threads(network, /*churn=*/true);
}

TEST(Determinism, RunProtocolIdenticalAcrossThreadCounts) {
  Rng rng(7);
  data::SurveyConfig sc;
  sc.base_users = 50;
  sc.base_items = 60;
  sc.replication = 2;
  const data::Workload workload = data::make_survey(sc, rng);
  analysis::RunConfig config;
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = 6;
  config.seed = 5;
  config.network.loss_rate = 0.05;
  config.network.jitter = 2;

  config.threads = 1;
  const analysis::RunResult base = analysis::run_protocol(workload, config);
  for (const unsigned threads : thread_counts()) {
    config.threads = threads;
    const analysis::RunResult result = analysis::run_protocol(workload, config);
    EXPECT_EQ(base.scores.f1, result.scores.f1) << "threads=" << threads;
    EXPECT_EQ(base.news_messages, result.news_messages);
    EXPECT_EQ(base.gossip_messages, result.gossip_messages);
    EXPECT_EQ(base.kbps_total, result.kbps_total);
    EXPECT_EQ(base.overlay.lscc_fraction, result.overlay.lscc_fraction);
  }
}

// The full scale-out run pipeline — BOOTSTRAP phase (parallel agent
// construction + per-node-stream view seeding), CSR overlay collection
// and the parallel score/histogram reductions — must be bit-identical
// across worker-thread counts AND shard widths: every stage either draws
// from per-node counter-based streams or merges fixed-size chunks in
// ascending order.
TEST(Determinism, RunPipelineIdenticalAcrossThreadsAndShardWidths) {
  Rng rng(13);
  data::SurveyConfig sc;
  sc.base_users = 60;
  sc.base_items = 70;
  sc.replication = 2;
  const data::Workload workload = data::make_survey(sc, rng);
  analysis::RunConfig config;
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = 6;
  config.seed = 21;
  config.network.loss_rate = 0.04;
  config.network.jitter = 1;

  config.threads = 1;
  config.shard_nodes = 16;
  const analysis::RunResult base = analysis::run_protocol(workload, config);
  const struct {
    unsigned threads;
    std::size_t shard_nodes;
  } grid[] = {{1, 64}, {4, 16}, {4, 32}, {2, 0 /* engine default */}};
  for (const auto& point : grid) {
    config.threads = point.threads;
    config.shard_nodes = point.shard_nodes;
    const analysis::RunResult result = analysis::run_protocol(workload, config);
    SCOPED_TRACE(testing::Message() << "threads=" << point.threads
                                    << " shard_nodes=" << point.shard_nodes);
    EXPECT_EQ(base.scores.precision, result.scores.precision);
    EXPECT_EQ(base.scores.recall, result.scores.recall);
    EXPECT_EQ(base.scores.f1, result.scores.f1);
    EXPECT_EQ(base.news_messages, result.news_messages);
    EXPECT_EQ(base.gossip_messages, result.gossip_messages);
    EXPECT_EQ(base.kbps_total, result.kbps_total);
    // Overlay stats come off the CSR collection path.
    EXPECT_EQ(base.overlay.lscc_fraction, result.overlay.lscc_fraction);
    EXPECT_EQ(base.overlay.clustering, result.overlay.clustering);
    EXPECT_EQ(base.overlay.components, result.overlay.components);
    // Histogram reductions (fixed chunks, in-order merge).
    EXPECT_EQ(base.dislike_fractions, result.dislike_fractions);
    // Per-user reduction (disjoint user ranges).
    EXPECT_EQ(base.per_user.precision, result.per_user.precision);
    EXPECT_EQ(base.per_user.recall, result.per_user.recall);
    // Tracker state itself, set by set (pins the whole trajectory).
    ASSERT_EQ(base.reached.size(), result.reached.size());
    for (std::size_t i = 0; i < base.reached.size(); ++i) {
      EXPECT_EQ(base.reached[i], result.reached[i]) << "item " << i;
    }
  }
}

// A scenario-driven run — churn wave + loss burst + interest drift + one
// spammer, all applied by scenario::Executor at cycle barriers from a
// reserved counter-based substream — must produce bit-identical per-cycle
// Tracker::digest() sequences for any worker-thread count and any shard
// width (the scenario engine's determinism contract; the spec below is
// scenarios/kitchen_sink.scn at test scale).
TEST(Determinism, ScenarioRunIdenticalAcrossThreadsAndShardWidths) {
  constexpr const char* kSpec =
      "name kitchen-sink\n"
      "at 6 spammers 1 items 3 fanout 6\n"
      "at 8 churn 8 every 4 until 24\n"
      "at 10 loss 0.25 until 18\n"
      "at 14 drift 3\n"
      "at 20 leave 6\n";
  Rng rng(29);
  data::SurveyConfig sc;
  sc.base_users = 60;
  sc.base_items = 70;
  sc.replication = 2;
  const data::Workload workload = data::make_survey(sc, rng);
  analysis::RunConfig config;
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = 6;
  config.seed = 31;
  config.network.loss_rate = 0.02;
  config.network.jitter = 1;
  config.scenario = scenario::parse(kSpec);
  config.collect_cycle_digests = true;

  config.threads = 1;
  config.shard_nodes = 16;
  const analysis::RunResult base = analysis::run_protocol(workload, config);
  ASSERT_EQ(base.cycle_digests.size(),
            static_cast<std::size_t>(config.total_cycles()));
  EXPECT_GT(base.news_messages, 0u);
  ASSERT_FALSE(base.windows.empty());
  const struct {
    unsigned threads;
    std::size_t shard_nodes;
  } grid[] = {{4, 16}, {1, 64}, {4, 64}, {2, 0 /* engine default */}};
  for (const auto& point : grid) {
    config.threads = point.threads;
    config.shard_nodes = point.shard_nodes;
    const analysis::RunResult result = analysis::run_protocol(workload, config);
    SCOPED_TRACE(testing::Message() << "threads=" << point.threads
                                    << " shard_nodes=" << point.shard_nodes);
    // The per-cycle digest series pins the whole measured trajectory.
    EXPECT_EQ(base.cycle_digests, result.cycle_digests);
    EXPECT_EQ(base.news_messages, result.news_messages);
    EXPECT_EQ(base.gossip_messages, result.gossip_messages);
    EXPECT_EQ(base.kbps_total, result.kbps_total);
    EXPECT_EQ(base.scores.f1, result.scores.f1);
    ASSERT_EQ(base.windows.size(), result.windows.size());
    for (std::size_t w = 0; w < base.windows.size(); ++w) {
      EXPECT_EQ(base.windows[w].scores.precision, result.windows[w].scores.precision);
      EXPECT_EQ(base.windows[w].scores.recall, result.windows[w].scores.recall);
    }
  }
}

// The full hostile-network stack at once — scenario-driven bursty loss,
// degraded links (latency/jitter/duplication/reordering), a crash wave
// with scheduled recoveries, rotating churn, plus random crash-recovery
// faults and the ack/retransmit + view-hygiene machinery — must still be
// bit-identical per cycle across worker-thread counts AND shard widths
// (the acceptance grid: threads ∈ {1, 4} × two widths). Retransmission
// jitter comes from the reserved per-node reliability substream and crash
// draws from the fault stream, so none of it can perturb commit order.
TEST(Determinism, FaultReliabilityScenarioIdenticalAcrossThreadsAndShardWidths) {
  constexpr const char* kSpec =
      "name hostile\n"
      "at 2 burst 0.15 0.25 0.5 until 26\n"
      "at 4 degrade latency 1 jitter 2 dup 0.05 reorder 0.1 until 24\n"
      "at 8 churn 6 every 4 until 22\n"
      "at 10 partition 0.5 xloss 0.7 until 16\n"
      "at 12 crash 5 for 6\n"
      "at 18 crash 3\n";
  Rng rng(37);
  data::SurveyConfig sc;
  sc.base_users = 60;
  sc.base_items = 70;
  sc.replication = 2;
  const data::Workload workload = data::make_survey(sc, rng);
  analysis::RunConfig config;
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = 6;
  config.seed = 43;
  config.network.jitter = 1;
  config.network.crash_rate = 0.002;  // random crash-recovery faults
  config.network.crash_recovery = 5;
  config.reliability.enabled = true;
  config.reliability.ack_timeout = 2;
  config.view_hygiene.max_age = 15;
  config.view_hygiene.suspicion_limit = 2;
  config.scenario = scenario::parse(kSpec);
  config.collect_cycle_digests = true;

  config.threads = 1;
  config.shard_nodes = 16;
  const analysis::RunResult base = analysis::run_protocol(workload, config);
  ASSERT_EQ(base.cycle_digests.size(),
            static_cast<std::size_t>(config.total_cycles()));
  EXPECT_GT(base.news_messages, 0u);
  // The reliability layer must actually have engaged, or the grid below
  // never exercises the retransmission path.
  EXPECT_GT(base.reliability.tracked, 0u);
  EXPECT_GT(base.reliability.ack_messages, 0u);
  const struct {
    unsigned threads;
    std::size_t shard_nodes;
  } grid[] = {{1, 64}, {4, 16}, {4, 64}, {2, 0 /* engine default */}};
  for (const auto& point : grid) {
    config.threads = point.threads;
    config.shard_nodes = point.shard_nodes;
    const analysis::RunResult result = analysis::run_protocol(workload, config);
    SCOPED_TRACE(testing::Message() << "threads=" << point.threads
                                    << " shard_nodes=" << point.shard_nodes);
    // The per-cycle digest series pins the whole measured trajectory.
    EXPECT_EQ(base.cycle_digests, result.cycle_digests);
    EXPECT_EQ(base.news_messages, result.news_messages);
    EXPECT_EQ(base.gossip_messages, result.gossip_messages);
    EXPECT_EQ(base.kbps_total, result.kbps_total);
    EXPECT_EQ(base.scores.f1, result.scores.f1);
    // Reliability accounting is part of the deterministic state too.
    EXPECT_EQ(base.reliability.tracked, result.reliability.tracked);
    EXPECT_EQ(base.reliability.retransmits, result.reliability.retransmits);
    EXPECT_EQ(base.reliability.acked, result.reliability.acked);
    EXPECT_EQ(base.reliability.expired, result.reliability.expired);
    EXPECT_EQ(base.reliability.ack_messages, result.reliability.ack_messages);
    EXPECT_EQ(base.reliability.duplicates, result.reliability.duplicates);
    EXPECT_EQ(base.reliability.deliveries, result.reliability.deliveries);
  }
}

// Fragment partitioning (sim/transport.hpp) must be invisible in the
// trajectory: running the SAME deployment as P lockstep workers — each
// owning the round-robin node fragment v % P, exchanging serialized
// envelopes over a socket mesh at commit-slot barriers — yields per-cycle
// partial Tracker digests that SUM (mod 2^64, the digest is commutative)
// to the single-process series, for any partition count × worker-thread
// count × shard width. Traffic totals sum the same way (each message is
// routed exactly once, by its sender's owner). The grid includes loss,
// jitter, bursty links, duplication, reordering, churn and a spammer so
// the sender-side network draws and the adversary path are all exercised
// across the fragment seam.
TEST(Determinism, PartitionCountInvariance) {
  constexpr const char* kSpec =
      "name partition-invariance\n"
      "at 6 spammers 1 items 2 fanout 6\n"
      "at 8 churn 6 every 5 until 20\n"
      "at 12 drift 2\n";
  Rng rng(47);
  data::SurveyConfig sc;
  sc.base_users = 60;
  sc.base_items = 70;
  sc.replication = 2;
  const data::Workload workload = data::make_survey(sc, rng);
  analysis::RunConfig base_config;
  base_config.approach = analysis::Approach::kWhatsUp;
  base_config.fanout = 6;
  base_config.seed = 53;
  base_config.network.loss_rate = 0.04;
  base_config.network.jitter = 1;
  base_config.network.duplicate_rate = 0.03;
  base_config.network.reorder_rate = 0.05;
  base_config.network.burst.p_enter = 0.05;
  base_config.network.burst.p_exit = 0.3;
  base_config.network.burst.loss_bad = 0.4;
  base_config.scenario = scenario::parse(kSpec);
  base_config.collect_cycle_digests = true;

  struct Partial {
    std::vector<std::uint64_t> digests;
    std::size_t news = 0;
    std::size_t gossip = 0;
  };
  // Runs the deployment as `partitions` lockstep workers (threads stand in
  // for the launcher's processes; the transport contract is identical) and
  // reduces the partial digest series by summation.
  const auto run_partitioned = [&](std::size_t partitions, unsigned threads,
                                   std::size_t shard_nodes) {
    analysis::RunConfig config = base_config;
    config.threads = threads;
    config.shard_nodes = shard_nodes;
    if (partitions <= 1) {
      const analysis::RunResult r = analysis::run_protocol(workload, config);
      return Partial{r.cycle_digests, r.news_messages, r.gossip_messages};
    }
    config.partitions = static_cast<int>(partitions);
    std::vector<std::vector<int>> mesh = sim::socketpair_mesh(partitions);
    std::vector<Partial> partials(partitions);
    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < partitions; ++w) {
      workers.emplace_back([&, w] {
        sim::SocketTransport transport(w, std::move(mesh[w]));
        analysis::RunConfig worker_config = config;
        worker_config.transport = &transport;
        const analysis::RunResult r = analysis::run_protocol(workload, worker_config);
        partials[w] = Partial{r.cycle_digests, r.news_messages, r.gossip_messages};
      });
    }
    for (std::thread& t : workers) t.join();
    Partial sum = std::move(partials[0]);
    for (std::size_t w = 1; w < partitions; ++w) {
      EXPECT_EQ(partials[w].digests.size(), sum.digests.size());
      for (std::size_t c = 0; c < sum.digests.size(); ++c) {
        sum.digests[c] += partials[w].digests[c];
      }
      sum.news += partials[w].news;
      sum.gossip += partials[w].gossip;
    }
    return sum;
  };

  struct GridPoint {
    std::size_t partitions;
    unsigned threads;
    std::size_t shard_nodes;
  };
  // The storm-spread calendar (publish_spread > 0) must satisfy the same
  // invariance: spreading is a pure function of the already-drawn calendar
  // (Workload::spread_publication_storms), so every worker derives the
  // identical staggered schedule with zero extra RNG draws. A reduced grid
  // re-checks the seam under the staggered calendar.
  const std::vector<GridPoint> full_grid = {
      {1, 4, 64}, {1, 1, 0}, {2, 1, 0},  {2, 4, 64},
      {4, 1, 64}, {4, 4, 0}, {2, 1, 64}, {4, 1, 0}};
  const std::vector<GridPoint> spread_grid = {{1, 4, 64}, {2, 1, 0}, {4, 4, 64}};
  std::vector<std::uint64_t> dense_digests;
  for (const Cycle spread : {Cycle{0}, Cycle{3}}) {
    base_config.publish_spread = spread;
    const Partial base = run_partitioned(1, 1, 16);
    ASSERT_EQ(base.digests.size(),
              static_cast<std::size_t>(base_config.total_cycles()));
    EXPECT_GT(base.news, 0u);
    if (spread == 0) {
      dense_digests = base.digests;
    } else {
      // Spreading must actually move publications (not silently no-op).
      EXPECT_NE(base.digests, dense_digests);
    }
    for (const GridPoint& point : spread == 0 ? full_grid : spread_grid) {
      SCOPED_TRACE(testing::Message()
                   << "spread=" << spread << " partitions=" << point.partitions
                   << " threads=" << point.threads
                   << " shard_nodes=" << point.shard_nodes);
      const Partial other =
          run_partitioned(point.partitions, point.threads, point.shard_nodes);
      EXPECT_EQ(base.digests, other.digests);
      EXPECT_EQ(base.news, other.news);
      EXPECT_EQ(base.gossip, other.gossip);
    }
  }
}

// The shard width changes how barrier work is grouped but must not change
// the simulation state (delivery order per node and all RNG streams are
// width-invariant).
TEST(Determinism, ShardWidthDoesNotChangeTrackerState) {
  // Reuse run_trajectory at width 16 vs. an engine-default-width run via a
  // direct comparison at two explicit widths.
  const auto run_width = [](std::size_t width) {
    Rng rng(kSeed);
    data::SurveyConfig sc;
    sc.base_users = 40;
    sc.base_items = 50;
    sc.replication = 2;
    data::Workload workload = data::make_survey(sc, rng);
    workload.schedule_publications(2, 20, rng);
    sim::Engine::Config ec;
    ec.seed = rng.next_u64();
    ec.threads = 4;
    ec.shard_nodes = width;
    sim::Engine engine(ec);
    analysis::WorkloadOpinions opinions(workload);
    WhatsUpConfig wu;
    const std::size_t n = workload.num_users();
    std::vector<WhatsUpAgent*> agents;
    for (NodeId v = 0; v < n; ++v) {
      auto agent = std::make_unique<WhatsUpAgent>(v, wu, opinions);
      agents.push_back(agent.get());
      engine.add_agent(std::move(agent));
    }
    for (NodeId v = 0; v < n; ++v) {
      std::vector<net::Descriptor> seed_view;
      for (int i = 0; i < wu.params.rps_view_size; ++i) {
        NodeId peer = v;
        while (peer == v) peer = static_cast<NodeId>(rng.index(n));
        seed_view.push_back(net::Descriptor{peer, -1, nullptr});
      }
      agents[v]->bootstrap_rps(std::move(seed_view));
    }
    metrics::Tracker tracker(n, workload.num_items());
    tracker.attach(engine);
    std::map<Cycle, std::vector<ItemIdx>> calendar;
    for (const data::NewsSpec& spec : workload.news) {
      calendar[spec.publish_at].push_back(spec.index);
    }
    for (Cycle c = 0; c < 30; ++c) {
      if (const auto it = calendar.find(c); it != calendar.end()) {
        for (ItemIdx item : it->second) {
          engine.publish(workload.news[item].source, item, workload.news[item].id);
        }
      }
      engine.run_cycle();
    }
    return tracker.digest();
  };
  EXPECT_EQ(run_width(8), run_width(64));
}

}  // namespace
}  // namespace whatsup
