#include "sim/opinions.hpp"

#include <gtest/gtest.h>

namespace whatsup::sim {
namespace {

// Toy ground truth: user u likes item i iff u == i (mod 3).
class ModOpinions : public Opinions {
 public:
  bool likes(NodeId user, ItemIdx item) const override {
    return user % 3 == item % 3;
  }
};

TEST(MutableOpinions, PassThroughByDefault) {
  ModOpinions base;
  MutableOpinions opinions(base);
  EXPECT_TRUE(opinions.likes(0, 3));
  EXPECT_FALSE(opinions.likes(1, 3));
  EXPECT_EQ(opinions.resolve(5), 5u);
}

TEST(MutableOpinions, AliasCopiesAnotherUsersTastes) {
  ModOpinions base;
  MutableOpinions opinions(base);
  opinions.set_alias(100, 1);  // node 100 behaves as user 1
  EXPECT_TRUE(opinions.likes(100, 1));
  EXPECT_TRUE(opinions.likes(100, 4));
  EXPECT_FALSE(opinions.likes(100, 3));
  EXPECT_EQ(opinions.resolve(100), 1u);
}

TEST(MutableOpinions, SwapExchangesInterests) {
  ModOpinions base;
  MutableOpinions opinions(base);
  opinions.swap_interests(0, 1);
  EXPECT_TRUE(opinions.likes(0, 1));   // 0 now behaves as 1
  EXPECT_TRUE(opinions.likes(1, 0));   // 1 now behaves as 0
  EXPECT_FALSE(opinions.likes(0, 0));
  EXPECT_FALSE(opinions.likes(1, 1));
}

TEST(MutableOpinions, DoubleSwapRestoresOriginal) {
  ModOpinions base;
  MutableOpinions opinions(base);
  opinions.swap_interests(0, 1);
  opinions.swap_interests(0, 1);
  EXPECT_TRUE(opinions.likes(0, 0));
  EXPECT_TRUE(opinions.likes(1, 1));
}

TEST(MutableOpinions, SwapAfterAliasUsesResolvedIdentities) {
  ModOpinions base;
  MutableOpinions opinions(base);
  opinions.set_alias(0, 2);      // 0 behaves as 2
  opinions.swap_interests(0, 1); // swap resolved identities 2 <-> 1
  EXPECT_TRUE(opinions.likes(0, 1));
  EXPECT_TRUE(opinions.likes(1, 2));
}

}  // namespace
}  // namespace whatsup::sim
