// Observability contract (src/obs/): the telemetry registry merges to the
// same totals regardless of which thread did which work, histogram
// bucketing is exact at the bounds, the trace exporter emits well-formed
// Chrome trace-event JSON, and — the load-bearing guarantee — enabling
// stats and tracing leaves fixed-seed trajectories bit-identical across
// worker-thread counts, shard widths AND fragment partitions.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/runner.hpp"
#include "dataset/survey.hpp"
#include "obs/registry.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "scenario/scenario.hpp"
#include "sim/transport.hpp"

namespace whatsup {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator. gtest is the only test
// dependency, and "the exporter emits parseable JSON" is exactly the kind
// of claim that should be checked by an independent parser, however small.

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : p_(text.data()), end_(p_ + text.size()) {}

  bool parse() { return value() && (skip_ws(), p_ == end_); }

 private:
  bool value() {
    skip_ws();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++p_;  // '{'
    skip_ws();
    if (p_ != end_ && *p_ == '}') { ++p_; return true; }
    while (true) {
      skip_ws();
      if (p_ == end_ || *p_ != '"' || !string()) return false;
      skip_ws();
      if (p_ == end_ || *p_++ != ':') return false;
      if (!value()) return false;
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == '}') { ++p_; return true; }
      return false;
    }
  }

  bool array() {
    ++p_;  // '['
    skip_ws();
    if (p_ != end_ && *p_ == ']') { ++p_; return true; }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == ']') { ++p_; return true; }
      return false;
    }
  }

  bool string() {
    ++p_;  // '"'
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
      }
      ++p_;
    }
    if (p_ == end_) return false;
    ++p_;  // closing '"'
    return true;
  }

  bool number() {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) != 0 ||
                          *p_ == '.' || *p_ == 'e' || *p_ == 'E' || *p_ == '+' ||
                          *p_ == '-')) {
      ++p_;
    }
    return p_ != start;
  }

  bool literal(const char* lit) {
    for (; *lit != '\0'; ++lit, ++p_) {
      if (p_ == end_ || *p_ != *lit) return false;
    }
    return true;
  }

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\n' || *p_ == '\t' || *p_ == '\r')) ++p_;
  }

  const char* p_;
  const char* end_;
};

std::size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// Every test leaves the global switch off so suites sharing the process
// (and the registry singleton) see the default-disabled state.
struct StatsGuard {
  ~StatsGuard() { obs::set_enabled(false); }
};

// ---------------------------------------------------------------------------
// Registry semantics.

// The merged totals must be a pure function of the work performed, not of
// which thread performed it: counters sum, gauges max, and both operators
// are commutative + associative, so any thread/lane assignment merges to
// the same numbers.
TEST(ObsRegistry, MergeIsExactAcrossThreadAssignments) {
  StatsGuard guard;
  obs::Registry::instance().reset();
  obs::set_enabled(true);
  const obs::MetricId events = obs::counter("test.merge.events");
  const obs::MetricId peak = obs::gauge("test.merge.peak");

  for (const unsigned threads : {1u, 4u}) {
    obs::Registry::instance().reset();
    // 4 * 1000 increments and a max over {10, 20, 30, 40}, split across
    // `threads` workers in two different interleavings.
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const unsigned chunks = 4 / threads;
        for (unsigned k = 0; k < chunks; ++k) {
          const unsigned chunk = t * chunks + k;
          for (int i = 0; i < 1000; ++i) obs::add(events);
          obs::gauge_max(peak, 10ull * (chunk + 1));
        }
      });
    }
    for (std::thread& w : workers) w.join();

    const std::vector<obs::MetricValue> merged = obs::Registry::instance().merge();
    std::uint64_t events_total = 0;
    std::uint64_t peak_max = 0;
    for (const obs::MetricValue& m : merged) {
      if (m.name == "test.merge.events") events_total = m.value;
      if (m.name == "test.merge.peak") peak_max = m.value;
    }
    EXPECT_EQ(events_total, 4000u) << "threads=" << threads;
    EXPECT_EQ(peak_max, 40u) << "threads=" << threads;
  }
}

TEST(ObsRegistry, MergedMetricsSortedByName) {
  StatsGuard guard;
  obs::Registry::instance().reset();
  obs::set_enabled(true);
  obs::counter("test.sort.zzz");
  obs::counter("test.sort.aaa");
  obs::add(obs::counter("test.sort.mmm"));
  const std::vector<obs::MetricValue> merged = obs::Registry::instance().merge();
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LT(merged[i - 1].name, merged[i].name);
  }
}

// Upper-inclusive bucketing: value <= bounds[i] lands in bucket i, and the
// final bucket counts overflow. The edges themselves are the interesting
// cases — an off-by-one here silently misfiles every latency sample.
TEST(ObsRegistry, HistogramBucketEdges) {
  StatsGuard guard;
  obs::Registry::instance().reset();
  obs::set_enabled(true);
  const std::uint64_t bounds[] = {10, 100};
  const obs::HistogramId h = obs::histogram("test.hist.edges", bounds);
  for (const std::uint64_t v : {1ull, 10ull, 11ull, 100ull, 101ull}) {
    obs::observe(h, v);
  }
  const std::vector<obs::MetricValue> merged = obs::Registry::instance().merge();
  const obs::MetricValue* hist = nullptr;
  for (const obs::MetricValue& m : merged) {
    if (m.name == "test.hist.edges") hist = &m;
  }
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, obs::Kind::kHistogram);
  EXPECT_EQ(hist->count, 5u);
  EXPECT_EQ(hist->sum, 223u);
  ASSERT_EQ(hist->buckets.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(hist->buckets[0], 2u);      // 1, 10
  EXPECT_EQ(hist->buckets[1], 2u);      // 11, 100
  EXPECT_EQ(hist->buckets[2], 1u);      // 101
}

TEST(ObsRegistry, RegistrationIsIdempotentByName) {
  StatsGuard guard;
  const obs::MetricId a = obs::counter("test.idem.counter");
  const obs::MetricId b = obs::counter("test.idem.counter");
  EXPECT_EQ(a, b);
  // Re-registering under a different kind is a programming error.
  EXPECT_THROW(obs::gauge("test.idem.counter"), std::logic_error);
}

TEST(ObsRegistry, DisabledAddsAreInvisible) {
  StatsGuard guard;
  obs::Registry::instance().reset();
  const obs::MetricId id = obs::counter("test.disabled.counter");
  obs::set_enabled(false);
  for (int i = 0; i < 100; ++i) obs::add(id);
  obs::set_enabled(true);
  obs::add(id, 7);
  for (const obs::MetricValue& m : obs::Registry::instance().merge()) {
    if (m.name == "test.disabled.counter") EXPECT_EQ(m.value, 7u);
  }
}

TEST(ObsRegistry, ResetZeroesEveryLane) {
  StatsGuard guard;
  obs::set_enabled(true);
  const obs::MetricId id = obs::counter("test.reset.counter");
  obs::add(id, 41);
  obs::Registry::instance().reset();
  for (const obs::MetricValue& m : obs::Registry::instance().merge()) {
    EXPECT_EQ(m.value, 0u) << m.name;
    EXPECT_EQ(m.count, 0u) << m.name;
  }
}

// ---------------------------------------------------------------------------
// Trace exporter.

// Spans recorded from several threads (including threads that have already
// exited by export time) must serialize into JSON that an independent
// parser accepts, with one traceEvents entry per surviving span.
TEST(ObsTrace, ExportIsWellFormedJson) {
  obs::trace_start(/*ring_capacity=*/256);
  {
    WUP_TRACE_SCOPE("main_span");
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
      workers.emplace_back([] {
        for (int i = 0; i < 5; ++i) {
          WUP_TRACE_SCOPE("worker_span");
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  obs::trace_stop();

  std::ostringstream out;
  const std::size_t events = obs::trace_write_json(out);
  const std::string json = out.str();
#if WHATSUP_TRACING
  EXPECT_EQ(events, 16u);  // 3 threads x 5 + the main span
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 16u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"worker_span\""), 15u);
#else
  EXPECT_EQ(events, 0u);  // compiled out: the macro expands to nothing
#endif
  EXPECT_TRUE(JsonCursor(json).parse()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ObsTrace, RingDropsOldestWhenFull) {
  obs::trace_start(/*ring_capacity=*/8);
  for (int i = 0; i < 50; ++i) {
    WUP_TRACE_SCOPE("overflowing");
  }
  obs::trace_stop();
  std::ostringstream out;
  const std::size_t events = obs::trace_write_json(out);
#if WHATSUP_TRACING
  EXPECT_EQ(events, 8u);  // bounded: newest 8 survive
#else
  EXPECT_EQ(events, 0u);
#endif
  EXPECT_TRUE(JsonCursor(out.str()).parse());
}

TEST(ObsTrace, InactiveSessionRecordsNothing) {
  // No trace_start: scopes must cost a branch and record nothing.
  {
    WUP_TRACE_SCOPE("orphan");
  }
  EXPECT_FALSE(obs::tracing_active());
}

// ---------------------------------------------------------------------------
// Snapshot + stats JSON.

TEST(ObsSnapshot, StatsJsonIsWellFormed) {
  StatsGuard guard;
  obs::Registry::instance().reset();
  obs::set_enabled(true);
  obs::add(obs::counter("test.json.counter"), 3);
  obs::observe(obs::histogram("test.json.hist", obs::time_bounds_ns(), "ns"), 5000);

  std::vector<obs::CycleSample> series;
  for (Cycle c = 0; c < 3; ++c) {
    series.push_back(obs::CycleSample{c, obs::Snapshot::collect()});
  }
  obs::Snapshot final_snapshot = obs::Snapshot::collect();
  final_snapshot.set_gauge("test.json.gauge", 99, "bytes");

  std::ostringstream out;
  obs::write_stats_json(out, series, final_snapshot);
  const std::string json = out.str();
  EXPECT_TRUE(JsonCursor(json).parse()) << json;
  EXPECT_EQ(count_occurrences(json, "\"cycle\":"), 3u);
  EXPECT_NE(json.find("\"final\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\""), std::string::npos);
  EXPECT_EQ(final_snapshot.value("test.json.counter"), 3u);
  EXPECT_EQ(final_snapshot.value("test.json.hist"), 1u);  // histogram -> count
}

// ---------------------------------------------------------------------------
// The determinism contract: telemetry on vs off, bit-identical digests.

analysis::RunConfig obs_run_config() {
  analysis::RunConfig config;
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = 6;
  config.seed = 77;
  config.network.loss_rate = 0.04;
  config.network.jitter = 1;
  config.collect_cycle_digests = true;
  return config;
}

data::Workload obs_workload() {
  Rng rng(31);
  data::SurveyConfig sc;
  sc.base_users = 60;
  sc.base_items = 70;
  sc.replication = 2;
  return data::make_survey(sc, rng);
}

// Stats sampling + a live trace session must not perturb the trajectory:
// per-cycle Tracker digests and traffic totals stay bit-identical with
// telemetry off vs on, across worker-thread counts x shard widths.
TEST(ObsDeterminism, DigestsBitIdenticalAcrossThreadsAndWidths) {
  StatsGuard guard;
  const data::Workload workload = obs_workload();
  analysis::RunConfig config = obs_run_config();

  obs::set_enabled(false);
  const analysis::RunResult base = analysis::run_protocol(workload, config);
  ASSERT_FALSE(base.cycle_digests.empty());
  ASSERT_GT(base.news_messages + base.gossip_messages, 0u);

  const struct {
    unsigned threads;
    std::size_t shard_nodes;
  } grid[] = {{1, 0}, {1, 64}, {4, 0}, {4, 64}};
  for (const auto& point : grid) {
    SCOPED_TRACE(testing::Message() << "threads=" << point.threads
                                    << " shard_nodes=" << point.shard_nodes);
    analysis::RunConfig on = config;
    on.threads = point.threads;
    on.shard_nodes = point.shard_nodes;
    on.observability.enable_stats = true;
    on.observability.stats_every = 1;
    obs::Registry::instance().reset();
    obs::trace_start(/*ring_capacity=*/4096);
    const analysis::RunResult result = analysis::run_protocol(workload, on);
    obs::trace_stop();

    EXPECT_EQ(base.cycle_digests, result.cycle_digests);
    EXPECT_EQ(base.news_messages, result.news_messages);
    EXPECT_EQ(base.gossip_messages, result.gossip_messages);
    EXPECT_EQ(base.scores.f1, result.scores.f1);
    // The run actually produced telemetry (the comparison is not vacuous).
    EXPECT_EQ(result.stats_series.size(), result.cycle_digests.size());
    EXPECT_GT(result.stats.value("engine.cycles"), 0u);
    EXPECT_GT(result.stats.value("engine.deliver.messages"), 0u);
    obs::set_enabled(false);
  }
}

// Same contract across the fragment seam: P in-process partition workers
// with stats enabled must sum (mod 2^64) to the telemetry-off
// single-process digest series. Each fragment worker writes its own lanes;
// the runner deliberately skips the end-of-run merge in fragment mode, so
// enabling stats is write-only there — and still must not perturb anything.
TEST(ObsDeterminism, PartitionedDigestsBitIdenticalWithTelemetry) {
  StatsGuard guard;
  const data::Workload workload = obs_workload();
  analysis::RunConfig config = obs_run_config();

  obs::set_enabled(false);
  const analysis::RunResult base = analysis::run_protocol(workload, config);
  ASSERT_FALSE(base.cycle_digests.empty());

  for (const std::size_t partitions : {2ull, 4ull}) {
    SCOPED_TRACE(testing::Message() << "partitions=" << partitions);
    obs::Registry::instance().reset();
    std::vector<std::vector<int>> mesh = sim::socketpair_mesh(partitions);
    std::vector<std::vector<std::uint64_t>> partials(partitions);
    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < partitions; ++w) {
      workers.emplace_back([&, w] {
        sim::SocketTransport transport(w, std::move(mesh[w]));
        analysis::RunConfig worker_config = config;
        worker_config.partitions = static_cast<int>(partitions);
        worker_config.transport = &transport;
        worker_config.observability.enable_stats = true;
        partials[w] = analysis::run_protocol(workload, worker_config).cycle_digests;
      });
    }
    for (std::thread& t : workers) t.join();
    obs::set_enabled(false);

    std::vector<std::uint64_t> sum = partials[0];
    for (std::size_t w = 1; w < partitions; ++w) {
      ASSERT_EQ(partials[w].size(), sum.size());
      for (std::size_t c = 0; c < sum.size(); ++c) sum[c] += partials[w][c];
    }
    EXPECT_EQ(base.cycle_digests, sum);
  }
}

}  // namespace
}  // namespace whatsup
