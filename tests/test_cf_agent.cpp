#include "baselines/cf_agent.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "whatsup_test_utils.hpp"

namespace whatsup::baselines {
namespace {

using whatsup::testing::CaptureAgent;
using whatsup::testing::FixedOpinions;

Params quiet_params() {
  Params p;
  p.rps_period = 1 << 20;
  p.wup_period = 1 << 20;
  return p;
}

net::Message news_to(NodeId from, NodeId to, ItemIdx index, Profile item_profile = {}) {
  net::Message m;
  m.from = from;
  m.to = to;
  m.type = net::MsgType::kNews;
  net::NewsPayload payload;
  payload.index = index;
  payload.id = 10000 + index;
  payload.item_profile = std::move(item_profile);
  m.payload = payload;
  return m;
}

struct CfFixture {
  CfFixture() : engine({21, {}, {}}) {
    for (int i = 0; i < 2; ++i) {
      auto sink = std::make_unique<CaptureAgent>();
      sinks.push_back(sink.get());
      engine.add_agent(std::move(sink));
    }
    auto agent = std::make_unique<CfAgent>(2, /*k=*/2, Metric::kWup, quiet_params(),
                                           opinions);
    node = agent.get();
    engine.add_agent(std::move(agent));
    // kNN view = both sinks (injected through the clustering bootstrap).
    node->bootstrap_rps({net::Descriptor{0, 0, nullptr}, net::Descriptor{1, 0, nullptr}});
  }
  sim::Engine engine;
  FixedOpinions opinions;
  std::vector<CaptureAgent*> sinks;
  CfAgent* node = nullptr;
};

TEST(CfAgent, LikedItemGoesToAllKNeighbors) {
  CfFixture fx;
  // Fill the kNN view by letting the node receive a WUP request carrying
  // candidates — simpler: publish, which forwards to the view; the view is
  // empty though. Use the knn bootstrap path instead: deliver a liked item
  // after seeding the view via clustering merge.
  // Directly exercise: seed knn view through a publish after manual merge.
  fx.opinions.like(2, 5);
  // Seed the clustering view through its public API: a WUP request from a
  // sink with an empty view makes the sink a candidate.
  net::Message wup_req;
  wup_req.from = 0;
  wup_req.to = 2;
  wup_req.type = net::MsgType::kWupRequest;
  net::ViewPayload vp;
  vp.sender = net::Descriptor{0, 5, nullptr};
  vp.view.push_back(net::Descriptor{1, 5, nullptr});
  wup_req.payload = vp;
  fx.engine.send(wup_req);
  fx.engine.run_cycles(3);
  ASSERT_EQ(fx.node->knn_view().size(), 2u);

  fx.engine.send(news_to(0, 2, 5));
  fx.engine.run_cycles(3);
  std::size_t delivered = 0;
  for (auto* sink : fx.sinks) {
    for (const auto& n : sink->news) delivered += n.index == 5 ? 1 : 0;
  }
  EXPECT_EQ(delivered, 2u);
}

TEST(CfAgent, DislikedItemNotForwarded) {
  CfFixture fx;  // dislikes everything
  fx.engine.send(news_to(0, 2, 5));
  fx.engine.run_cycles(3);
  for (auto* sink : fx.sinks) EXPECT_TRUE(sink->news.empty());
  // But the opinion is still recorded in the profile (drives clustering).
  EXPECT_EQ(fx.node->user_profile().score(10005).value(), 0.0);
}

TEST(CfAgent, ForwardedCopiesCarryNoItemProfile) {
  CfFixture fx;
  fx.opinions.like(2, 5);
  net::Message wup_req;
  wup_req.from = 0;
  wup_req.to = 2;
  wup_req.type = net::MsgType::kWupRequest;
  net::ViewPayload vp;
  vp.sender = net::Descriptor{0, 5, nullptr};
  wup_req.payload = vp;
  fx.engine.send(wup_req);
  fx.engine.run_cycles(3);

  Profile incoming_profile;
  incoming_profile.set(999, 0, 1.0);
  fx.engine.send(news_to(0, 2, 5, incoming_profile));
  fx.engine.run_cycles(3);
  for (auto* sink : fx.sinks) {
    for (const auto& n : sink->news) EXPECT_TRUE(n.item_profile.empty());
  }
}

TEST(CfAgent, DuplicatesDropped) {
  CfFixture fx;
  fx.opinions.like(2, 5);
  fx.engine.send(news_to(0, 2, 5));
  fx.engine.send(news_to(1, 2, 5));
  fx.engine.run_cycles(3);
  // The profile has exactly one entry for the item.
  EXPECT_EQ(fx.node->user_profile().size(), 1u);
}

TEST(CfAgent, PublishForwardsToNeighbors) {
  CfFixture fx;
  net::Message wup_req;
  wup_req.from = 0;
  wup_req.to = 2;
  wup_req.type = net::MsgType::kWupRequest;
  net::ViewPayload vp;
  vp.sender = net::Descriptor{0, 5, nullptr};
  wup_req.payload = vp;
  fx.engine.send(wup_req);
  fx.engine.run_cycles(3);
  fx.engine.publish(2, 9, 10009);
  fx.engine.run_cycles(3);
  std::size_t delivered = 0;
  for (auto* sink : fx.sinks) delivered += sink->news.size();
  EXPECT_GE(delivered, 1u);
  EXPECT_TRUE(fx.node->user_profile().contains(10009));
}

}  // namespace
}  // namespace whatsup::baselines
