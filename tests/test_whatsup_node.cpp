#include "whatsup/node.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "whatsup_test_utils.hpp"

namespace whatsup {
namespace {

using testing::CaptureAgent;
using testing::FixedOpinions;

// Quiet parameters: gossip suppressed so only news messages flow.
WhatsUpConfig quiet_config(int f_like = 2) {
  WhatsUpConfig config;
  config.params.rps_period = 1 << 20;
  config.params.wup_period = 1 << 20;
  config.params.f_like = f_like;
  return config;
}

net::Message news_to(NodeId from, NodeId to, net::NewsPayload payload) {
  net::Message m;
  m.from = from;
  m.to = to;
  m.type = net::MsgType::kNews;
  m.payload = std::move(payload);
  return m;
}

struct NodeFixture {
  // Node 1 = WhatsUpAgent under test; node 0 = capture sink.
  explicit NodeFixture(WhatsUpConfig config = quiet_config()) : engine({123, {}, {}}) {
    auto sink_owner = std::make_unique<CaptureAgent>();
    sink = sink_owner.get();
    engine.add_agent(std::move(sink_owner));
    auto node_owner = std::make_unique<WhatsUpAgent>(1, config, opinions);
    node = node_owner.get();
    engine.add_agent(std::move(node_owner));
    // Both views point at the sink so every forward is observable.
    node->bootstrap_wup({net::Descriptor{0, 0, nullptr}});
    node->bootstrap_rps({net::Descriptor{0, 0, nullptr}});
  }

  void deliver(net::NewsPayload payload) {
    engine.send(news_to(2, 1, std::move(payload)));
    engine.run_cycles(3);  // deliver to node, then node's forward to sink
  }

  sim::Engine engine;
  FixedOpinions opinions;
  CaptureAgent* sink = nullptr;
  WhatsUpAgent* node = nullptr;
};

net::NewsPayload item(ItemIdx index, Cycle created = 0) {
  net::NewsPayload news;
  news.index = index;
  news.id = 10000 + index;
  news.created = created;
  return news;
}

TEST(WhatsUpNode, LikeRecordsOpinionKeyedByItemTimestamp) {
  NodeFixture fx;
  fx.opinions.like(1, 5);
  fx.deliver(item(5, /*created=*/7));
  const auto entry = fx.node->user_profile().find(10005);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->score, 1.0);
  EXPECT_EQ(entry->timestamp, 7);  // tI, not the delivery cycle (Alg. 1 line 5)
}

TEST(WhatsUpNode, DislikeRecordsZeroScore) {
  NodeFixture fx;
  fx.deliver(item(5));
  const auto entry = fx.node->user_profile().find(10005);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->score, 0.0);
}

TEST(WhatsUpNode, LikedItemForwardedToWupView) {
  NodeFixture fx;
  fx.opinions.like(1, 5);
  fx.deliver(item(5));
  ASSERT_EQ(fx.sink->news.size(), 1u);
  EXPECT_EQ(fx.sink->news[0].index, 5u);
  EXPECT_FALSE(fx.sink->news[0].via_dislike);
  EXPECT_EQ(fx.sink->news[0].hops, 1);
  EXPECT_EQ(fx.sink->news[0].dislikes, 0);
}

TEST(WhatsUpNode, LikeFoldsOwnProfileIntoItemProfile) {
  NodeFixture fx;
  fx.opinions.like(1, 1);
  fx.opinions.like(1, 2);
  fx.deliver(item(1));  // builds history: profile now has item 1
  fx.deliver(item(2));  // likes item 2 -> folds profile (item 1) into P^I
  ASSERT_EQ(fx.sink->news.size(), 2u);
  const Profile& forwarded = fx.sink->news[1].item_profile;
  EXPECT_TRUE(forwarded.contains(10001));  // prior like travels with the item
  EXPECT_EQ(forwarded.score(10001).value(), 1.0);
}

TEST(WhatsUpNode, FoldAveragesWithIncomingItemProfile) {
  NodeFixture fx;
  fx.opinions.like(1, 1);
  fx.opinions.like(1, 2);
  fx.deliver(item(1));  // profile: {10001 -> 1}
  net::NewsPayload incoming = item(2);
  incoming.item_profile.set(10001, 0, 0.0);  // path disagrees about item 1
  fx.deliver(std::move(incoming));
  const Profile& forwarded = fx.sink->news[1].item_profile;
  EXPECT_EQ(forwarded.score(10001).value(), 0.5);  // (0 + 1) / 2
}

TEST(WhatsUpNode, DislikeDoesNotFoldProfile) {
  NodeFixture fx;
  fx.opinions.like(1, 1);
  fx.deliver(item(1));              // builds profile
  fx.deliver(item(2));              // disliked
  ASSERT_EQ(fx.sink->news.size(), 2u);
  const net::NewsPayload& fwd = fx.sink->news[1];
  EXPECT_TRUE(fwd.via_dislike);
  EXPECT_EQ(fwd.dislikes, 1);
  EXPECT_FALSE(fwd.item_profile.contains(10001));  // profile NOT folded
}

TEST(WhatsUpNode, DislikedItemAtTtlIsDropped) {
  NodeFixture fx;
  net::NewsPayload incoming = item(3);
  incoming.dislikes = fx.node->config().params.beep_ttl;  // exhausted
  fx.deliver(std::move(incoming));
  EXPECT_TRUE(fx.sink->news.empty());
}

TEST(WhatsUpNode, DuplicateDeliveriesDropped) {
  NodeFixture fx;
  fx.opinions.like(1, 5);
  fx.deliver(item(5));
  fx.deliver(item(5));
  EXPECT_EQ(fx.sink->news.size(), 1u);  // forwarded exactly once (SIR)
}

TEST(WhatsUpNode, LikedFanoutUsesFLike) {
  // Three sinks, fLIKE=3: each receives the liked item once.
  sim::Engine engine({7, {}, {}});
  FixedOpinions opinions;
  std::vector<CaptureAgent*> sinks;
  for (int i = 0; i < 3; ++i) {
    auto sink = std::make_unique<CaptureAgent>();
    sinks.push_back(sink.get());
    engine.add_agent(std::move(sink));
  }
  auto node_owner = std::make_unique<WhatsUpAgent>(3, quiet_config(3), opinions);
  WhatsUpAgent* node = node_owner.get();
  engine.add_agent(std::move(node_owner));
  node->bootstrap_wup({net::Descriptor{0, 0, nullptr}, net::Descriptor{1, 0, nullptr},
                       net::Descriptor{2, 0, nullptr}});
  opinions.like(3, 9);
  engine.send(news_to(0, 3, item(9)));
  engine.run_cycles(3);
  for (auto* sink : sinks) EXPECT_EQ(sink->news.size(), 1u);
}

TEST(WhatsUpNode, PublishSeedsItemProfileFromOwnProfile) {
  NodeFixture fx;
  fx.opinions.like(1, 1);
  fx.deliver(item(1));  // profile: item 1 liked
  fx.engine.publish(1, 7, 10007);
  fx.engine.run_cycles(3);
  ASSERT_EQ(fx.sink->news.size(), 2u);
  const net::NewsPayload& published = fx.sink->news[1];
  EXPECT_EQ(published.index, 7u);
  EXPECT_EQ(published.origin, 1u);
  EXPECT_EQ(published.hops, 1);
  EXPECT_TRUE(published.item_profile.contains(10007));  // the item itself
  EXPECT_TRUE(published.item_profile.contains(10001));  // prior history
}

TEST(WhatsUpNode, ProfileWindowPurgesOldEntries) {
  WhatsUpConfig config = quiet_config();
  config.params.profile_window = 5;
  NodeFixture fx(config);
  fx.opinions.like(1, 1);
  fx.deliver(item(1, /*created=*/0));
  EXPECT_TRUE(fx.node->user_profile().contains(10001));
  fx.engine.run_cycles(10);  // now ~12 cycles past creation
  EXPECT_FALSE(fx.node->user_profile().contains(10001));
}

TEST(WhatsUpNode, StaleItemProfileEntriesPurgedBeforeForward) {
  WhatsUpConfig config = quiet_config();
  config.params.profile_window = 5;
  NodeFixture fx(config);
  fx.engine.run_cycles(20);  // advance the clock well past the window
  fx.opinions.like(1, 4);
  net::NewsPayload incoming = item(4, /*created=*/20);
  incoming.item_profile.set(777, /*timestamp=*/0, 1.0);  // ancient entry
  fx.deliver(std::move(incoming));
  ASSERT_EQ(fx.sink->news.size(), 1u);
  EXPECT_FALSE(fx.sink->news[0].item_profile.contains(777));  // Alg. 1 lines 8-10
}

}  // namespace
}  // namespace whatsup
