#include "net/traffic.hpp"

#include <gtest/gtest.h>

namespace whatsup::net {
namespace {

TEST(Traffic, CountsPerProtocol) {
  Traffic t;
  t.record_sent(Protocol::kRps, 100);
  t.record_sent(Protocol::kRps, 50);
  t.record_sent(Protocol::kBeep, 500);
  EXPECT_EQ(t.messages(Protocol::kRps), 2u);
  EXPECT_EQ(t.bytes(Protocol::kRps), 150u);
  EXPECT_EQ(t.messages(Protocol::kWup), 0u);
  EXPECT_EQ(t.messages(Protocol::kBeep), 1u);
  EXPECT_EQ(t.total_messages(), 3u);
  EXPECT_EQ(t.total_bytes(), 650u);
}

TEST(Traffic, DroppedCounter) {
  Traffic t;
  t.record_dropped(Protocol::kBeep);
  t.record_dropped(Protocol::kBeep);
  EXPECT_EQ(t.dropped(Protocol::kBeep), 2u);
  EXPECT_EQ(t.dropped(Protocol::kRps), 0u);
}

TEST(Traffic, MarkSeparatesWarmup) {
  Traffic t;
  t.record_sent(Protocol::kBeep, 100);
  t.mark();
  t.record_sent(Protocol::kBeep, 70);
  t.record_sent(Protocol::kWup, 30);
  EXPECT_EQ(t.total_messages(), 3u);
  EXPECT_EQ(t.total_messages_since_mark(), 2u);
  EXPECT_EQ(t.bytes_since_mark(Protocol::kBeep), 70u);
  EXPECT_EQ(t.total_bytes_since_mark(), 100u);
}

TEST(Traffic, KbpsPerNode) {
  Traffic t;
  // 1000 bytes over 10 nodes, 2 cycles of 30 s each:
  // 8000 bits / 10 nodes / 60 s = 13.33 bps = 0.013333 Kbps per node.
  t.record_sent(Protocol::kBeep, 1000);
  EXPECT_NEAR(t.kbps_per_node(Protocol::kBeep, 10, 2.0, 30.0, false), 0.013333, 1e-6);
  EXPECT_NEAR(t.kbps_per_node_total(10, 2.0, 30.0, false), 0.013333, 1e-6);
}

TEST(Traffic, KbpsGuardsAgainstZeroDivisors) {
  Traffic t;
  t.record_sent(Protocol::kBeep, 1000);
  EXPECT_EQ(t.kbps_per_node(Protocol::kBeep, 0, 2.0, 30.0), 0.0);
  EXPECT_EQ(t.kbps_per_node(Protocol::kBeep, 10, 0.0, 30.0), 0.0);
  EXPECT_EQ(t.kbps_per_node(Protocol::kBeep, 10, 2.0, 0.0), 0.0);
}

}  // namespace
}  // namespace whatsup::net
