#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

namespace whatsup::sim {
namespace {

// Minimal agent that records everything it sees and can emit on demand.
class ProbeAgent : public Agent {
 public:
  void on_cycle(Context& ctx) override { cycles.push_back(ctx.now()); }
  void on_message(Context& ctx, const net::Message& message) override {
    received.push_back({message.from, ctx.now()});
  }
  void publish(Context& ctx, ItemIdx index, ItemId id) override {
    published.push_back(index);
    // Broadcast one news message to node 0 so tests can observe sends.
    net::NewsPayload news;
    news.id = id;
    news.index = index;
    if (ctx.self() != 0) ctx.send(0, net::MsgType::kNews, news);
  }

  std::vector<Cycle> cycles;
  std::vector<std::pair<NodeId, Cycle>> received;
  std::vector<ItemIdx> published;
};

struct Fixture {
  explicit Fixture(Engine::Config config = {}) : engine(config) {
    for (int i = 0; i < 4; ++i) {
      auto agent = std::make_unique<ProbeAgent>();
      probes.push_back(agent.get());
      engine.add_agent(std::move(agent));
    }
  }
  Engine engine;
  std::vector<ProbeAgent*> probes;
};

net::Message news_message(NodeId from, NodeId to) {
  net::Message m;
  m.from = from;
  m.to = to;
  m.type = net::MsgType::kNews;
  m.payload = net::NewsPayload{};
  return m;
}

TEST(Engine, CyclesAdvanceAndActivateAgents) {
  Fixture fx;
  fx.engine.run_cycles(3);
  EXPECT_EQ(fx.engine.now(), 3);
  for (auto* probe : fx.probes) {
    EXPECT_EQ(probe->cycles, (std::vector<Cycle>{0, 1, 2}));
  }
}

TEST(Engine, MessagesDeliveredNextCycleByDefault) {
  Fixture fx;
  fx.engine.send(news_message(1, 2));
  fx.engine.run_cycle();  // cycle 0 -> delivery scheduled for cycle 1
  EXPECT_TRUE(fx.probes[2]->received.empty());
  fx.engine.run_cycle();
  ASSERT_EQ(fx.probes[2]->received.size(), 1u);
  EXPECT_EQ(fx.probes[2]->received[0].first, 1u);
  EXPECT_EQ(fx.probes[2]->received[0].second, 1);
}

TEST(Engine, ConfigurableLatency) {
  Engine::Config config;
  config.network.latency = 3;
  Fixture fx(config);
  fx.engine.send(news_message(0, 1));
  fx.engine.run_cycles(3);
  EXPECT_TRUE(fx.probes[1]->received.empty());
  fx.engine.run_cycle();
  EXPECT_EQ(fx.probes[1]->received.size(), 1u);
}

TEST(Engine, FullLossDropsEverythingAndCountsIt) {
  Engine::Config config;
  config.network.loss_rate = 1.0;
  Fixture fx(config);
  for (int i = 0; i < 10; ++i) fx.engine.send(news_message(0, 1));
  fx.engine.run_cycles(3);
  EXPECT_TRUE(fx.probes[1]->received.empty());
  // Senders still paid for the messages; the network dropped them.
  EXPECT_EQ(fx.engine.traffic().messages(net::Protocol::kBeep), 10u);
  EXPECT_EQ(fx.engine.traffic().dropped(net::Protocol::kBeep), 10u);
}

TEST(Engine, PartialLossIsApproximatelyCalibrated) {
  Engine::Config config;
  config.network.loss_rate = 0.3;
  config.seed = 99;
  Fixture fx(config);
  const int n = 5000;
  for (int i = 0; i < n; ++i) fx.engine.send(news_message(0, 1));
  fx.engine.run_cycles(2);
  const double delivered = static_cast<double>(fx.probes[1]->received.size());
  EXPECT_NEAR(delivered / n, 0.7, 0.03);
}

TEST(Engine, InboxCapacityDropsOverflow) {
  Engine::Config config;
  config.network.inbox_capacity = 5;
  Fixture fx(config);
  for (int i = 0; i < 20; ++i) fx.engine.send(news_message(0, 1));
  fx.engine.run_cycles(2);
  EXPECT_EQ(fx.probes[1]->received.size(), 5u);
  EXPECT_EQ(fx.engine.traffic().dropped(net::Protocol::kBeep), 15u);
}

TEST(Engine, InactiveNodesLoseMessagesAndSkipCycles) {
  Fixture fx;
  fx.engine.set_active(2, false);
  fx.engine.send(news_message(0, 2));
  fx.engine.run_cycles(2);
  EXPECT_TRUE(fx.probes[2]->received.empty());
  EXPECT_TRUE(fx.probes[2]->cycles.empty());
  EXPECT_EQ(fx.engine.num_active(), 3u);
  fx.engine.set_active(2, true);
  fx.engine.run_cycle();
  EXPECT_EQ(fx.probes[2]->cycles.size(), 1u);
}

TEST(Engine, RandomActiveRespectsExclusionsAndActivity) {
  Fixture fx;
  fx.engine.set_active(0, false);
  fx.engine.set_active(1, false);
  for (int i = 0; i < 50; ++i) {
    const NodeId pick = fx.engine.random_active(2);
    EXPECT_EQ(pick, 3u);
  }
  fx.engine.set_active(3, false);
  EXPECT_EQ(fx.engine.random_active(2), kNoNode);
}

TEST(Engine, PublishInvokesSourceAgent) {
  Fixture fx;
  fx.engine.publish(1, 7, 7777);
  EXPECT_EQ(fx.probes[1]->published, (std::vector<ItemIdx>{7}));
  // The probe forwards to node 0 on publish.
  fx.engine.run_cycles(2);
  EXPECT_EQ(fx.probes[0]->received.size(), 1u);
}

TEST(Engine, CycleHooksRunEveryCycle) {
  Fixture fx;
  std::vector<Cycle> hook_cycles;
  fx.engine.add_cycle_hook(
      [&hook_cycles](Engine&, Cycle c) { hook_cycles.push_back(c); });
  fx.engine.run_cycles(3);
  EXPECT_EQ(hook_cycles, (std::vector<Cycle>{0, 1, 2}));
}

TEST(Engine, DeterministicAcrossIdenticalRuns) {
  auto run_once = [](std::uint64_t seed) {
    Engine::Config config;
    config.seed = seed;
    config.network.loss_rate = 0.5;
    Fixture fx(config);
    for (int i = 0; i < 100; ++i) fx.engine.send(news_message(0, 1));
    fx.engine.run_cycles(2);
    return fx.probes[1]->received.size();
  };
  EXPECT_EQ(run_once(42), run_once(42));
  // (Different seeds almost surely differ somewhere, but we only assert
  // the reproducibility contract here.)
}

TEST(Engine, JitterSpreadsDeliveries) {
  Engine::Config config;
  config.network.jitter = 3;
  config.seed = 5;
  Fixture fx(config);
  for (int i = 0; i < 200; ++i) fx.engine.send(news_message(0, 1));
  fx.engine.run_cycles(6);
  // All 200 arrive within latency+jitter cycles, at varying times.
  EXPECT_EQ(fx.probes[1]->received.size(), 200u);
  std::set<Cycle> arrival_cycles;
  for (const auto& [from, cycle] : fx.probes[1]->received) arrival_cycles.insert(cycle);
  EXPECT_GT(arrival_cycles.size(), 1u);
}

}  // namespace
}  // namespace whatsup::sim
