// Scenario engine: spec parser round-trips, canonical event ordering,
// executor semantics (waves, flash re-schedules, network episodes,
// adversary registration) and adversary containment — spammer items must
// not dominate the top-K recall of honest users.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "analysis/experiments.hpp"
#include "analysis/runner.hpp"
#include "dataset/survey.hpp"
#include "scenario/adversary.hpp"
#include "scenario/executor.hpp"
#include "scenario/scenario.hpp"
#include "sim/engine.hpp"

namespace whatsup {
namespace {

struct IdleAgent : sim::Agent {
  void on_cycle(sim::Context&) override {}
  void on_message(sim::Context&, const net::Message&) override {}
  void publish(sim::Context&, ItemIdx, ItemId) override {}
};

std::unique_ptr<sim::Engine> make_idle_engine(std::size_t n, std::uint64_t seed = 1) {
  auto engine = std::make_unique<sim::Engine>(sim::Engine::Config{seed, {}, {}});
  for (std::size_t i = 0; i < n; ++i) engine->add_agent(std::make_unique<IdleAgent>());
  return engine;
}

data::Workload small_survey(std::uint64_t seed) {
  Rng rng(seed);
  data::SurveyConfig config;
  config.base_users = 60;
  config.base_items = 80;
  config.replication = 1;
  return data::make_survey(config, rng);
}

// ---- Spec format ----------------------------------------------------------

constexpr const char* kFullSpec = R"(# every verb once
name full-demo
at 5 leave 12
at 8 join 6
at 10 down 0 15
at 12 up 0 15
at 14 churn 8 every 4 until 30
at 16 flash 5
at 18 drift 3
at 20 swap 2
at 22 swap-pair 4 9
at 24 join-clone 59 17
at 26 loss 0.3 until 32
at 28 partition 0.5 xloss 0.75 until 34
at 29 burst 0.05 0.3 0.5 until 36
at 29 degrade latency 1 jitter 2 dup 0.02 reorder 0.1 until 35
at 30 crash 4 for 6
at 30 spammers 2 items 3 fanout 6
at 32 freeriders 2
)";

TEST(ScenarioSpec, ParseFormatRoundTrip) {
  const scenario::Timeline parsed = scenario::parse(kFullSpec);
  EXPECT_EQ(parsed.name, "full-demo");
  ASSERT_EQ(parsed.events().size(), 17u);
  const std::string canonical = scenario::format(parsed);
  const scenario::Timeline reparsed = scenario::parse(canonical);
  EXPECT_EQ(parsed, reparsed);
  // The canonical form is a fixed point.
  EXPECT_EQ(canonical, scenario::format(reparsed));
}

TEST(ScenarioSpec, BuilderMatchesParser) {
  scenario::Timeline built;
  built.name = "demo";
  built.at(5, scenario::LeaveWave{12});
  built.at(7, scenario::LossBurst{0.25, 15});
  const scenario::Timeline parsed = scenario::parse(
      "name demo\n"
      "at 5 leave 12\n"
      "at 7 loss 0.25 until 15\n");
  EXPECT_EQ(built, parsed);
}

TEST(ScenarioSpec, CanonicalOrdering) {
  // Insertion out of cycle order: events() must come back sorted by
  // cycle, with same-cycle events in insertion order.
  scenario::Timeline timeline;
  timeline.at(30, scenario::LeaveWave{1});
  timeline.at(10, scenario::JoinWave{2});
  timeline.at(10, scenario::LeaveWave{3});
  timeline.at(20, scenario::FlashCrowd{4});
  const auto& events = timeline.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].cycle, 10);
  EXPECT_TRUE(std::holds_alternative<scenario::JoinWave>(events[0].action));
  EXPECT_EQ(events[1].cycle, 10);
  EXPECT_TRUE(std::holds_alternative<scenario::LeaveWave>(events[1].action));
  EXPECT_EQ(events[2].cycle, 20);
  EXPECT_EQ(events[3].cycle, 30);
  // Same-cycle order survives the spec round-trip (seq is renumbered but
  // relative order is canonical).
  const scenario::Timeline reparsed = scenario::parse(scenario::format(timeline));
  EXPECT_EQ(timeline, reparsed);
}

TEST(ScenarioSpec, ErrorsNameTheLine) {
  EXPECT_THROW(scenario::parse("at 5 explode 3\n"), std::invalid_argument);
  EXPECT_THROW(scenario::parse("at x leave 3\n"), std::invalid_argument);
  EXPECT_THROW(scenario::parse("at 5 loss 1.5 until 9\n"), std::invalid_argument);
  EXPECT_THROW(scenario::parse("at 5 loss 0.2 until 4\n"), std::invalid_argument);
  EXPECT_THROW(scenario::parse("at 5 leave 3 7\n"), std::invalid_argument);
  EXPECT_THROW(scenario::parse("at 5 partition 1.5 until 9\n"), std::invalid_argument);
  EXPECT_THROW(scenario::parse("at 5 burst 0 0.3 0.5 until 9\n"), std::invalid_argument);
  EXPECT_THROW(scenario::parse("at 5 burst 0.1 0.3 0.5 until 5\n"), std::invalid_argument);
  EXPECT_THROW(scenario::parse("at 5 degrade until 9\n"), std::invalid_argument);
  EXPECT_THROW(scenario::parse("at 5 degrade dup 1.5 until 9\n"), std::invalid_argument);
  EXPECT_THROW(scenario::parse("at 5 crash 0\n"), std::invalid_argument);
  EXPECT_THROW(scenario::parse("at 5 crash 3 for 0\n"), std::invalid_argument);
  // Out-of-range integers fail loudly instead of wrapping silently.
  EXPECT_THROW(scenario::parse("at 5 leave 4294967296\n"), std::invalid_argument);
  EXPECT_THROW(scenario::parse("at 4294967296 leave 3\n"), std::invalid_argument);
  try {
    scenario::parse("name ok\n\nat 9 bogus 1\n");
    FAIL() << "expected parse failure";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(ScenarioSpec, HorizonAndPopulations) {
  const scenario::Timeline timeline = scenario::parse(kFullSpec);
  EXPECT_EQ(timeline.horizon(), 37);  // burst until 36 / crash 30 for 6
  EXPECT_EQ(timeline.num_spammers(), 2u);
  EXPECT_EQ(timeline.num_free_riders(), 2u);
  EXPECT_EQ(timeline.num_adversaries(), 4u);
  EXPECT_EQ(timeline.num_spam_items(), 6u);
  EXPECT_TRUE(timeline.mutates_opinions());
  EXPECT_FALSE(scenario::parse("at 5 leave 3\n").mutates_opinions());
}

TEST(ScenarioSpec, WindowsSplitAtEventsAndEpisodeEnds) {
  const scenario::Timeline timeline = scenario::parse(
      "at 15 loss 0.3 until 25\n"
      "at 20 leave 10\n");
  const auto windows = timeline.windows(60);
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_EQ(windows[0].begin, 0);
  EXPECT_EQ(windows[0].end, 15);
  EXPECT_EQ(windows[0].label, "start");
  EXPECT_EQ(windows[1].begin, 15);
  EXPECT_EQ(windows[1].label, "loss");
  EXPECT_EQ(windows[2].begin, 20);
  EXPECT_EQ(windows[2].label, "leave");
  EXPECT_EQ(windows[3].begin, 25);
  EXPECT_EQ(windows[3].end, 60);
  EXPECT_EQ(windows[3].label, "restore");
}

// ---- Executor semantics ---------------------------------------------------

TEST(ScenarioExecutor, WavesAreDeterministicAndSized) {
  const scenario::Timeline timeline = scenario::parse(
      "at 2 leave 10\n"
      "at 5 join 4\n");
  data::Workload dummy;
  const auto run = [&](std::uint64_t seed) {
    const auto engine_ptr = make_idle_engine(40, seed);
    sim::Engine& engine = *engine_ptr;
    data::Workload workload = dummy;
    scenario::Executor executor(timeline, engine, workload, nullptr, seed);
    executor.register_adversaries();
    std::vector<bool> active_after_leave, active_after_join;
    for (Cycle c = 0; c < 6; ++c) {
      executor.begin_cycle(c);
      if (c == 2) {
        for (NodeId v = 0; v < 40; ++v) active_after_leave.push_back(engine.is_active(v));
      }
      engine.run_cycle();
    }
    for (NodeId v = 0; v < 40; ++v) active_after_join.push_back(engine.is_active(v));
    EXPECT_EQ(engine.num_active(), 40u - 10u + 4u);
    return std::make_pair(active_after_leave, active_after_join);
  };
  const auto a = run(7);
  const auto b = run(7);
  EXPECT_EQ(a, b);  // same seed, same victims
  EXPECT_EQ(static_cast<int>(std::count(a.first.begin(), a.first.end(), false)), 10);
  const auto c = run(8);
  EXPECT_NE(a.first, c.first);  // different seed, (almost surely) different victims
}

TEST(ScenarioExecutor, FlashPullsTheNextPublicationsForward) {
  data::Workload workload = small_survey(3);
  Rng rng(3);
  workload.schedule_publications(5, 50, rng);
  std::size_t later_before = 0;
  for (const auto& spec : workload.news) later_before += spec.publish_at > 20;
  ASSERT_GT(later_before, 6u);

  const scenario::Timeline timeline = scenario::parse("at 20 flash 6\n");
  const auto engine_ptr = make_idle_engine(workload.num_users());
  scenario::Executor executor(timeline, *engine_ptr, workload, nullptr, 9);
  executor.prepare();

  std::size_t at_flash = 0, later_after = 0;
  for (const auto& spec : workload.news) {
    at_flash += spec.publish_at == 20;
    later_after += spec.publish_at > 20;
  }
  EXPECT_GE(at_flash, 6u);
  EXPECT_EQ(later_after, later_before - 6u);
}

TEST(ScenarioExecutor, NetworkEpisodesApplyAndRestore) {
  const scenario::Timeline timeline = scenario::parse(
      "at 2 loss 0.4 until 5\n"
      "at 3 partition 0.5 until 7\n");
  data::Workload workload;
  const auto engine_ptr = make_idle_engine(40);
  sim::Engine& engine = *engine_ptr;
  scenario::Executor executor(timeline, engine, workload, nullptr, 11);
  executor.register_adversaries();
  for (Cycle c = 0; c < 9; ++c) {
    executor.begin_cycle(c);
    if (c < 2) {
      EXPECT_EQ(engine.network().loss_rate, 0.0) << c;
    } else if (c < 5) {
      EXPECT_EQ(engine.network().loss_rate, 0.4) << c;
    } else {
      EXPECT_EQ(engine.network().loss_rate, 0.0) << c;  // restored
    }
    if (c >= 3 && c < 7) {
      EXPECT_TRUE(engine.network().partitioned()) << c;
      EXPECT_EQ(engine.network().partition_nodes, 20u) << c;
    } else {
      EXPECT_FALSE(engine.network().partitioned()) << c;
    }
    engine.run_cycle();
  }
}

TEST(ScenarioExecutor, OverlappingLossBurstsNest) {
  // An inner burst that ends first must hand control back to the outer
  // still-running burst, not to the baseline.
  const scenario::Timeline timeline = scenario::parse(
      "at 1 loss 0.5 until 8\n"
      "at 3 loss 0.2 until 5\n");
  data::Workload workload;
  const auto engine_ptr = make_idle_engine(20);
  sim::Engine& engine = *engine_ptr;
  scenario::Executor executor(timeline, engine, workload, nullptr, 3);
  executor.register_adversaries();
  const double expected[] = {0.0, 0.5, 0.5, 0.2, 0.2, 0.5, 0.5, 0.5, 0.0, 0.0};
  for (Cycle c = 0; c < 10; ++c) {
    executor.begin_cycle(c);
    EXPECT_EQ(engine.network().loss_rate, expected[c]) << "cycle " << c;
    engine.run_cycle();
  }
}

TEST(ScenarioExecutor, PrepareIsIdempotent) {
  data::Workload workload = small_survey(7);
  Rng rng(7);
  workload.schedule_publications(5, 50, rng);
  const std::size_t items_before = workload.num_items();
  const scenario::Timeline timeline = scenario::parse(
      "at 20 flash 4\n"
      "at 10 spammers 1 items 3 fanout 4\n");
  const auto engine_ptr = make_idle_engine(workload.num_users());
  scenario::Executor executor(timeline, *engine_ptr, workload, nullptr, 7);
  executor.prepare();
  const std::vector<data::NewsSpec> after_first = workload.news;
  executor.prepare();  // second call must be a no-op
  executor.register_adversaries();  // and the implicit call in here too
  EXPECT_EQ(workload.num_items(), items_before + 3);
  ASSERT_EQ(workload.news.size(), after_first.size());
  for (std::size_t i = 0; i < items_before; ++i) {
    EXPECT_EQ(workload.news[i].publish_at, after_first[i].publish_at) << i;
  }
}

TEST(ScenarioExecutor, AdversariesRegisterOfflineAndActivateOnCue) {
  const scenario::Timeline timeline = scenario::parse(
      "at 5 spammers 2 items 3 fanout 4\n"
      "at 8 freeriders 1\n");
  data::Workload workload = small_survey(5);
  const std::size_t honest_items = workload.num_items();
  const std::size_t n = workload.num_users();
  const auto engine_ptr = make_idle_engine(n);
  sim::Engine& engine = *engine_ptr;
  scenario::Executor executor(timeline, engine, workload, nullptr, 13);
  executor.prepare();
  EXPECT_EQ(workload.num_items(), honest_items + 6);
  executor.register_adversaries();
  ASSERT_EQ(engine.num_nodes(), n + 3);
  EXPECT_EQ(executor.spammer_agents().size(), 2u);
  EXPECT_EQ(executor.free_rider_agents().size(), 1u);
  EXPECT_EQ(executor.first_spam_item(), honest_items);
  // Spam specs are sourced at their spammer and never scheduled.
  for (std::size_t i = honest_items; i < workload.num_items(); ++i) {
    EXPECT_EQ(workload.news[i].publish_at, kNoCycle);
    EXPECT_GE(workload.news[i].source, n);
    EXPECT_EQ(workload.interested_in[i].count(), 0u);
  }
  for (NodeId id = static_cast<NodeId>(n); id < engine.num_nodes(); ++id) {
    EXPECT_FALSE(engine.is_active(id));
  }
  for (Cycle c = 0; c < 9; ++c) {
    executor.begin_cycle(c);
    engine.run_cycle();
  }
  EXPECT_TRUE(engine.is_active(static_cast<NodeId>(n)));      // spammer 1
  EXPECT_TRUE(engine.is_active(static_cast<NodeId>(n + 1)));  // spammer 2
  EXPECT_TRUE(engine.is_active(static_cast<NodeId>(n + 2)));  // free rider
  // The spammers actually pushed spam once activated.
  EXPECT_GT(engine.traffic().messages(net::Protocol::kBeep), 0u);
}

// ---- Adversary containment ------------------------------------------------

TEST(ScenarioAdversary, SpammerDoesNotDominateHonestRecall) {
  const data::Workload workload = small_survey(17);
  const std::size_t honest_items = workload.num_items();

  analysis::RunConfig config = analysis::default_run_config(17);
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = 6;
  const analysis::RunResult clean = analysis::run_protocol(workload, config);

  config.scenario = scenario::parse("at 8 spammers 2 items 4 fanout 10\n");
  const analysis::RunResult attacked = analysis::run_protocol(workload, config);

  // The attack is live: spam items exist past the honest item space and
  // reach users...
  ASSERT_EQ(attacked.reached.size(), honest_items + 8);
  std::size_t spam_reach = 0;
  for (std::size_t i = honest_items; i < attacked.reached.size(); ++i) {
    spam_reach += attacked.reached[i].count();
  }
  EXPECT_GT(spam_reach, 0u);
  // ...but spam is never measured (it cannot enter the score pass at all)
  for (const ItemIdx item : attacked.measured) {
    EXPECT_LT(item, honest_items);
  }
  // ...and honest top-K recall does not collapse under the flood: BEEP's
  // dislike TTL starves the spam wave, so real news keeps flowing.
  EXPECT_GT(attacked.scores.recall, 0.5 * clean.scores.recall);
  EXPECT_GT(attacked.scores.f1, 0.0);
}

TEST(ScenarioRun, WindowedScoresReportedAroundEvents) {
  const data::Workload workload = small_survey(23);
  analysis::RunConfig config = analysis::default_run_config(23);
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = 6;
  config.scenario = scenario::parse(
      "at 30 flash 5\n"
      "at 40 leave 10\n");
  const analysis::RunResult result = analysis::run_protocol(workload, config);
  ASSERT_EQ(result.windows.size(), 3u);
  EXPECT_EQ(result.windows[0].window.label, "start");
  EXPECT_EQ(result.windows[1].window.label, "flash");
  EXPECT_EQ(result.windows[2].window.label, "leave");
  // Every measured item lands in exactly one window.
  std::size_t windowed_items = 0;
  for (const auto& ws : result.windows) windowed_items += ws.scores.items;
  EXPECT_EQ(windowed_items, result.measured.size());
  // The flash window actually holds the pulled-forward burst.
  EXPECT_GE(result.windows[1].scores.items, 5u);
}

TEST(ScenarioRun, DriftAndSwapNeedMutableOpinions) {
  const scenario::Timeline timeline = scenario::parse("at 3 drift 2\n");
  data::Workload workload = small_survey(29);
  const auto engine_ptr = make_idle_engine(workload.num_users());
  EXPECT_THROW(scenario::Executor(timeline, *engine_ptr, workload, nullptr, 1),
               std::invalid_argument);
  // run_protocol wires the mutable layer automatically.
  analysis::RunConfig config = analysis::default_run_config(29);
  config.approach = analysis::Approach::kWhatsUp;
  config.fanout = 6;
  config.scenario = scenario::parse(
      "at 25 drift 2\n"
      "at 25 swap 1\n");
  const analysis::RunResult result = analysis::run_protocol(workload, config);
  EXPECT_GT(result.scores.f1, 0.0);
}

}  // namespace
}  // namespace whatsup
