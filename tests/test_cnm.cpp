#include "graph/community.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace whatsup::graph {
namespace {

UGraph two_cliques_with_bridge(std::size_t k) {
  UGraph g(2 * k);
  for (NodeId a = 0; a < k; ++a) {
    for (NodeId b = a + 1; b < k; ++b) {
      g.add_edge(a, b);
      g.add_edge(static_cast<NodeId>(k + a), static_cast<NodeId>(k + b));
    }
  }
  g.add_edge(0, static_cast<NodeId>(k));
  return g;
}

TEST(Modularity, AllInOneCommunityIsZeroish) {
  const UGraph g = two_cliques_with_bridge(5);
  const std::vector<int> one(g.num_nodes(), 0);
  EXPECT_NEAR(modularity(g, one), 0.0, 1e-12);
}

TEST(Modularity, PlantedSplitBeatsRandomSplit) {
  const UGraph g = two_cliques_with_bridge(6);
  std::vector<int> planted(g.num_nodes());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) planted[v] = v < 6 ? 0 : 1;
  std::vector<int> alternating(g.num_nodes());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) alternating[v] = static_cast<int>(v % 2);
  EXPECT_GT(modularity(g, planted), 0.3);
  EXPECT_GT(modularity(g, planted), modularity(g, alternating));
}

TEST(Cnm, RecoversTwoCliques) {
  const UGraph g = two_cliques_with_bridge(8);
  const CommunityResult result = detect_communities(g);
  EXPECT_EQ(result.count, 2u);
  // Everyone in clique 0 shares a label, distinct from clique 1.
  for (NodeId v = 1; v < 8; ++v) EXPECT_EQ(result.membership[v], result.membership[0]);
  for (NodeId v = 9; v < 16; ++v) EXPECT_EQ(result.membership[v], result.membership[8]);
  EXPECT_NE(result.membership[0], result.membership[8]);
  EXPECT_GT(result.modularity, 0.3);
}

TEST(Cnm, SizesSortedDescendingAndSumToN) {
  Rng rng(11);
  std::vector<int> planted;
  const std::vector<std::size_t> sizes = {50, 30, 20};
  const UGraph g = planted_partition(sizes, 0.35, 0.005, rng, planted);
  const CommunityResult result = detect_communities(g);
  std::size_t total = 0;
  for (std::size_t c = 1; c < result.sizes.size(); ++c) {
    EXPECT_LE(result.sizes[c], result.sizes[c - 1]);
  }
  for (std::size_t s : result.sizes) total += s;
  EXPECT_EQ(total, g.num_nodes());
}

TEST(Cnm, RecoversPlantedPartitionApproximately) {
  Rng rng(12);
  std::vector<int> planted;
  const std::vector<std::size_t> sizes = {60, 60, 60};
  const UGraph g = planted_partition(sizes, 0.3, 0.005, rng, planted);
  const CommunityResult result = detect_communities(g);
  // Count pairs that agree between planted and detected labels (Rand-like).
  std::size_t agree = 0, total = 0;
  for (NodeId a = 0; a < g.num_nodes(); ++a) {
    for (NodeId b = a + 1; b < g.num_nodes(); ++b) {
      const bool same_planted = planted[a] == planted[b];
      const bool same_detected = result.membership[a] == result.membership[b];
      agree += same_planted == same_detected;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.9);
}

TEST(Cnm, EdgelessGraphIsAllSingletons) {
  const CommunityResult result = detect_communities(UGraph(5));
  EXPECT_EQ(result.count, 5u);
  EXPECT_EQ(result.sizes.size(), 5u);
}

TEST(Cnm, EmptyGraph) {
  const CommunityResult result = detect_communities(UGraph{});
  EXPECT_EQ(result.count, 0u);
}

TEST(Cnm, MembershipLabelsAreDense) {
  const UGraph g = two_cliques_with_bridge(4);
  const CommunityResult result = detect_communities(g);
  for (int label : result.membership) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, static_cast<int>(result.count));
  }
}

}  // namespace
}  // namespace whatsup::graph
