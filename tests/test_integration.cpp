// End-to-end fidelity checks: the paper's qualitative claims must hold on
// reduced-scale workloads (DESIGN.md §3 "Fidelity expectations"). These are
// the guardrails for the bench harness.
#include <gtest/gtest.h>

#include "analysis/experiments.hpp"
#include "analysis/runner.hpp"
#include "analysis/sweeps.hpp"
#include "baselines/cpubsub.hpp"
#include "dataset/digg.hpp"
#include "dataset/survey.hpp"

namespace whatsup::analysis {
namespace {

const data::Workload& survey() {
  static const data::Workload w = [] {
    Rng rng(11);
    data::SurveyConfig config;
    config.base_users = 100;
    config.base_items = 150;
    config.replication = 2;  // 200 users, 300 items
    return data::make_survey(config, rng);
  }();
  return w;
}

RunConfig base_config(Approach approach, int fanout, std::uint64_t seed = 3) {
  RunConfig config;
  config.approach = approach;
  config.fanout = fanout;
  config.seed = seed;
  config.warmup_cycles = 4;
  config.publish_cycles = 40;
  config.drain_cycles = 12;
  config.measure_margin = 12;
  return config;
}

namespace {

// Multi-seed average, for the statistical fidelity claims.
RunResult averaged(Approach approach, int fanout, int seeds) {
  std::vector<RunResult> runs;
  for (int s = 0; s < seeds; ++s) {
    runs.push_back(
        run_protocol(survey(), base_config(approach, fanout, 3 + 97 * static_cast<std::uint64_t>(s))));
  }
  return average_runs(std::move(runs));
}

}  // namespace

TEST(Fidelity, WupMetricNotWorseThanCosineAtModerateFanout) {
  // Fig. 3 / Table III: the paper's WUP metric dominates cosine. On our
  // regenerated survey (where every user rates every received item, so the
  // profile-size discrimination of the asymmetric metric is muted) the gap
  // shrinks to a statistical tie — we assert non-inferiority over seeds
  // and record the deviation in EXPERIMENTS.md.
  const RunResult wup = averaged(Approach::kWhatsUp, 8, 3);
  const RunResult cos = averaged(Approach::kWhatsUpCos, 8, 3);
  EXPECT_GT(wup.scores.f1, cos.scores.f1 - 0.02);
  EXPECT_GT(wup.scores.recall, cos.scores.recall - 0.03);
}

TEST(Fidelity, BeepBeatsPlainCfWithSameMetric) {
  // §V-B: amplification + dislike routing lift recall over k-NN CF at
  // comparable fanout.
  const RunResult whatsup = run_protocol(survey(), base_config(Approach::kWhatsUp, 8));
  const RunResult cf = run_protocol(survey(), base_config(Approach::kCfWup, 8));
  EXPECT_GT(whatsup.scores.recall, cf.scores.recall);
  EXPECT_GE(whatsup.scores.f1, cf.scores.f1 - 0.02);
}

TEST(Fidelity, WupOverlayConnectsAtLowerFanoutThanCosine) {
  // Fig. 4: the WUP metric reaches a large SCC at least as early as cosine
  // (§V-A also reports lower clustering for WUP; on our data the two
  // overlays have similar clustering — recorded in EXPERIMENTS.md).
  const RunResult wup = averaged(Approach::kWhatsUp, 4, 3);
  const RunResult cos = averaged(Approach::kWhatsUpCos, 4, 3);
  EXPECT_GT(wup.overlay.lscc_fraction, cos.overlay.lscc_fraction - 0.05);
}

TEST(Fidelity, LsccGrowsWithFanout) {
  const RunResult lo = run_protocol(survey(), base_config(Approach::kWhatsUp, 2));
  const RunResult hi = run_protocol(survey(), base_config(Approach::kWhatsUp, 10));
  EXPECT_GE(hi.overlay.lscc_fraction, lo.overlay.lscc_fraction);
  EXPECT_GT(hi.overlay.lscc_fraction, 0.9);
}

TEST(Fidelity, DislikeRoutingDeliversLikedNews) {
  // Table IV: a large share of liked deliveries traverse >= 1 dislike hop.
  const RunResult r = run_protocol(survey(), base_config(Approach::kWhatsUp, 8));
  const double via_dislike = 1.0 - r.dislike_fractions[0];
  EXPECT_GT(via_dislike, 0.1);
  EXPECT_LT(r.dislike_fractions[0], 0.95);
  // Monotone-ish decay: one dislike hop is more common than four.
  EXPECT_GT(r.dislike_fractions[1], r.dislike_fractions[4]);
}

TEST(Fidelity, TtlImprovesRecallThenSaturates) {
  // Fig. 5: TTL 0 -> 4 lifts recall; beyond ~4 the gain vanishes.
  RunConfig config = base_config(Approach::kWhatsUp, 8);
  config.params.beep_ttl = 0;
  const RunResult ttl0 = run_protocol(survey(), config);
  config.params.beep_ttl = 4;
  const RunResult ttl4 = run_protocol(survey(), config);
  config.params.beep_ttl = 8;
  const RunResult ttl8 = run_protocol(survey(), config);
  EXPECT_GT(ttl4.scores.recall, ttl0.scores.recall);
  EXPECT_NEAR(ttl8.scores.f1, ttl4.scores.f1, 0.08);
}

TEST(Fidelity, RobustToModerateLossFragileAtLowFanout) {
  // Table VI: fanout 6 shrugs off 20% loss; fanout 3 at 50% loss collapses.
  RunConfig f6 = base_config(Approach::kWhatsUp, 6);
  const RunResult clean = run_protocol(survey(), f6);
  f6.network.loss_rate = 0.20;
  const RunResult lossy = run_protocol(survey(), f6);
  EXPECT_GT(lossy.scores.f1, clean.scores.f1 - 0.1);

  RunConfig f3 = base_config(Approach::kWhatsUp, 3);
  f3.network.loss_rate = 0.50;
  const RunResult collapsed = run_protocol(survey(), f3);
  EXPECT_LT(collapsed.scores.recall, clean.scores.recall * 0.6);
}

TEST(Fidelity, CascadeRecallFarBelowWhatsUpOnDigg) {
  // Table V (Digg): similar precision, recall gap in WhatsUp's favour.
  Rng rng(13);
  data::DiggConfig config;
  config.users = 200;
  config.items = 400;
  config.categories = 20;
  const data::Workload digg = data::make_digg(config, rng);
  const RunResult cascade = run_protocol(digg, base_config(Approach::kCascade, 1));
  const RunResult whatsup = run_protocol(digg, base_config(Approach::kWhatsUp, 10));
  EXPECT_GT(whatsup.scores.recall, 1.5 * cascade.scores.recall);
  EXPECT_GT(whatsup.scores.f1, cascade.scores.f1);
}

TEST(Fidelity, CPubSubHasPerfectRecallWorsePrecisionTradeoff) {
  // Table V (Survey): C-Pub/Sub recall 1; WhatsUp wins on precision.
  const RunResult whatsup = run_protocol(survey(), base_config(Approach::kWhatsUp, 8));
  const auto cps =
      baselines::evaluate_cpubsub(survey(), std::span<const ItemIdx>(whatsup.measured));
  EXPECT_DOUBLE_EQ(cps.recall, 1.0);
  EXPECT_GT(whatsup.scores.precision, cps.precision);
}

TEST(Fidelity, BandwidthGrowsWithFanoutAndBeepDominates) {
  // Fig. 8b: BEEP bandwidth linear in fanout and above view maintenance.
  const RunResult lo = run_protocol(survey(), base_config(Approach::kWhatsUp, 3));
  const RunResult hi = run_protocol(survey(), base_config(Approach::kWhatsUp, 12));
  EXPECT_GT(hi.kbps_beep, lo.kbps_beep * 1.8);
  // News traffic is at least comparable to view maintenance at high fanout
  // (the paper's deployment found it dominant; our simulated profiles are
  // denser, which inflates the gossip share).
  EXPECT_GT(hi.kbps_beep, hi.kbps_gossip * 0.6);
}

TEST(Fidelity, DynamicsJoinerConvergesFasterUnderWupMetric) {
  // Fig. 7: the joining node rebuilds a good WUP view faster with the WUP
  // metric than with cosine. At replication 1 the metric gap sits inside
  // seed noise for small trial counts, so average over enough trials that
  // the comparison is about the metric, not one bootstrap draw.
  Rng rng(17);
  data::SurveyConfig config;
  config.base_users = 80;
  config.base_items = 120;
  config.replication = 1;
  const data::Workload w = data::make_survey(config, rng);
  const Cycle event = 40, total = 110;
  const DynamicsSeries wup = run_dynamics(w, Metric::kWup, 5, event, total, 10);
  const DynamicsSeries cos = run_dynamics(w, Metric::kCosine, 5, event, total, 10);
  // Average joiner view similarity over the post-join window, normalised by
  // the reference node's level under the same metric.
  auto post_join_ratio = [&](const DynamicsSeries& series) {
    double join = 0.0, ref = 0.0;
    int n = 0;
    for (Cycle c = event + 20; c < total; ++c) {
      join += series.join_sim[static_cast<std::size_t>(c)];
      ref += series.ref_sim[static_cast<std::size_t>(c)];
      ++n;
    }
    return ref > 0 ? join / ref : 0.0;
  };
  EXPECT_GT(post_join_ratio(wup), 0.4);
  EXPECT_GE(post_join_ratio(wup), post_join_ratio(cos) - 0.15);
}

}  // namespace
}  // namespace whatsup::analysis
