#include "dataset/digg.hpp"

#include <gtest/gtest.h>

#include "graph/components.hpp"

namespace whatsup::data {
namespace {

DiggConfig small_config() {
  DiggConfig config;
  config.users = 150;
  config.items = 300;
  config.categories = 12;
  return config;
}

TEST(Digg, BasicShapeAndValidation) {
  Rng rng(1);
  const Workload w = make_digg(small_config(), rng);
  EXPECT_NO_THROW(w.validate());
  EXPECT_EQ(w.num_users(), 150u);
  EXPECT_EQ(w.num_items(), 300u);
  EXPECT_EQ(w.n_topics, 12u);
  ASSERT_TRUE(w.social.has_value());
  EXPECT_EQ(w.social->num_nodes(), 150u);
}

TEST(Digg, LikesAreCategoryClosure) {
  Rng rng(2);
  const Workload w = make_digg(small_config(), rng);
  // Any two items of the same category have identical audiences (the
  // paper's de-biasing defines interests per category).
  for (ItemIdx a = 0; a < w.num_items(); a += 13) {
    for (ItemIdx b = a + 1; b < w.num_items(); b += 17) {
      if (w.topic_of(a) != w.topic_of(b)) continue;
      EXPECT_EQ(w.interested(a), w.interested(b));
    }
  }
}

TEST(Digg, PopularCategoriesHaveLargerAudiences) {
  Rng rng(3);
  DiggConfig config = small_config();
  config.users = 400;
  const Workload w = make_digg(config, rng);
  // Category 0 (Zipf rank 0) should beat a deep-tail category.
  double pop_head = 0.0, pop_tail = 0.0;
  std::size_t head_n = 0, tail_n = 0;
  for (ItemIdx i = 0; i < w.num_items(); ++i) {
    if (w.topic_of(i) == 0) {
      pop_head += w.popularity(i);
      ++head_n;
    }
    if (w.topic_of(i) >= 8) {
      pop_tail += w.popularity(i);
      ++tail_n;
    }
  }
  if (head_n > 0 && tail_n > 0) {
    EXPECT_GT(pop_head / static_cast<double>(head_n),
              pop_tail / static_cast<double>(tail_n));
  }
}

TEST(Digg, SocialGraphIsWellConnected) {
  Rng rng(4);
  const Workload w = make_digg(small_config(), rng);
  const auto comps = graph::connected_components(*w.social);
  EXPECT_EQ(comps.count, 1u);  // BA graphs are connected
  // Mean degree ~ 2 * attach.
  double total_degree = 0.0;
  for (NodeId v = 0; v < w.social->num_nodes(); ++v) {
    total_degree += static_cast<double>(w.social->degree(v));
  }
  EXPECT_GT(total_degree / static_cast<double>(w.social->num_nodes()), 4.0);
}

TEST(Digg, PaperScaleMatchesTableI) {
  Rng rng(5);
  const DiggConfig config;  // defaults = paper scale
  const Workload w = make_digg(config, rng);
  EXPECT_EQ(w.num_users(), 750u);
  EXPECT_EQ(w.num_items(), 2500u);
  EXPECT_EQ(w.n_topics, 40u);
}

TEST(Digg, EveryItemHasAnAudience) {
  Rng rng(6);
  const Workload w = make_digg(small_config(), rng);
  for (ItemIdx i = 0; i < w.num_items(); ++i) {
    EXPECT_GT(w.interested(i).count(), 0u);
  }
}

}  // namespace
}  // namespace whatsup::data
