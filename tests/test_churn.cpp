// Churn robustness: the paper's pitch for gossip is "simplicity of
// deployment and robustness" (§I). These tests subject a WhatsUp
// deployment to node departures and returns and check that dissemination
// and overlay maintenance survive.
//
// All churn is driven through the scenario engine: departures/returns are
// declarative timeline events applied by scenario::Executor at cycle
// barriers, and rotating churn uses scenario::ChurnProcess — churn
// semantics live in one place (src/scenario/) instead of per-test
// activate/deactivate loops.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "analysis/runner.hpp"
#include "dataset/survey.hpp"
#include "metrics/tracker.hpp"
#include "scenario/executor.hpp"
#include "sim/engine.hpp"
#include "whatsup/node.hpp"

namespace whatsup {
namespace {

struct ChurnDeployment {
  ChurnDeployment(std::uint64_t seed, scenario::Timeline timeline_in)
      : rng(seed), engine({seed, {}, {}}), timeline(std::move(timeline_in)) {
    data::SurveyConfig config;
    config.base_users = 60;
    config.base_items = 90;
    config.replication = 1;
    workload = data::make_survey(config, rng);
    workload.schedule_publications(3, 45, rng);
    opinions = std::make_unique<analysis::WorkloadOpinions>(workload);

    WhatsUpConfig wu;
    wu.params.f_like = 6;
    for (NodeId v = 0; v < workload.num_users(); ++v) {
      auto agent = std::make_unique<WhatsUpAgent>(v, wu, *opinions);
      agents.push_back(agent.get());
      engine.add_agent(std::move(agent));
    }
    const std::size_t n = workload.num_users();
    for (NodeId v = 0; v < n; ++v) {
      std::vector<net::Descriptor> seed_view;
      for (int i = 0; i < wu.params.rps_view_size; ++i) {
        NodeId peer = v;
        while (peer == v) peer = static_cast<NodeId>(rng.index(n));
        seed_view.push_back(net::Descriptor{peer, -1, nullptr});
      }
      agents[v]->bootstrap_rps(std::move(seed_view));
    }
    // Same ordering contract as run_protocol: the executor's workload
    // surgery (flash re-schedules, spam appends) runs BEFORE the tracker
    // is sized and the calendar is snapshotted.
    executor = std::make_unique<scenario::Executor>(timeline, engine, workload,
                                                    nullptr, seed);
    executor->register_adversaries();
    tracker = std::make_unique<metrics::Tracker>(n, workload.num_items());
    tracker->attach(engine);
    for (const data::NewsSpec& spec : workload.news) {
      if (spec.publish_at != kNoCycle) calendar[spec.publish_at].push_back(spec.index);
    }
  }

  void run_cycle() {
    executor->begin_cycle(engine.now());
    if (const auto it = calendar.find(engine.now()); it != calendar.end()) {
      for (ItemIdx item : it->second) {
        if (engine.is_active(workload.news[item].source)) {
          engine.publish(workload.news[item].source, item, workload.news[item].id);
        }
      }
    }
    engine.run_cycle();
  }

  void run_cycles(int n) {
    for (int c = 0; c < n; ++c) run_cycle();
  }

  metrics::Scores scores_after(Cycle published_from) const {
    std::vector<ItemIdx> measured;
    for (const data::NewsSpec& spec : workload.news) {
      if (spec.publish_at >= published_from) measured.push_back(spec.index);
    }
    return metrics::compute_scores(workload, tracker->reached_sets(), measured);
  }

  Rng rng;
  sim::Engine engine;
  scenario::Timeline timeline;
  data::Workload workload;
  std::unique_ptr<analysis::WorkloadOpinions> opinions;
  std::unique_ptr<metrics::Tracker> tracker;
  std::unique_ptr<scenario::Executor> executor;
  std::vector<WhatsUpAgent*> agents;
  std::map<Cycle, std::vector<ItemIdx>> calendar;
};

TEST(Churn, DisseminationSurvivesMassDeparture) {
  // 25% of the network leaves abruptly at cycle 20 (no goodbye messages).
  scenario::Timeline timeline;
  timeline.at(20, scenario::SetRange{0, 15, false});
  ChurnDeployment deployment(101, timeline);
  deployment.run_cycles(60);
  // Items published after the departure still reach a meaningful share of
  // the surviving interested users (gossip redundancy routes around the
  // dead view entries) — dissemination does not collapse.
  const metrics::Scores scores = deployment.scores_after(22);
  EXPECT_GT(scores.recall, 0.2);
}

TEST(Churn, ReturningNodesReintegrate) {
  scenario::Timeline timeline;
  timeline.at(15, scenario::SetRange{0, 10, false});
  timeline.at(25, scenario::SetRange{0, 10, true});
  ChurnDeployment deployment(202, timeline);
  deployment.run_cycles(55);
  // Returned nodes keep receiving: their RPS/WUP views refill and fresh
  // items reach them again.
  std::size_t received_late = 0;
  for (const data::NewsSpec& spec : deployment.workload.news) {
    if (spec.publish_at < 30) continue;
    for (NodeId v = 0; v < 10; ++v) {
      received_late += deployment.tracker->reached(spec.index).test(v);
    }
  }
  EXPECT_GT(received_late, 10u);
}

TEST(Churn, DepartedNodesReceiveNothing) {
  scenario::Timeline timeline;
  timeline.at(0, scenario::SetRange{5, 1, false});
  ChurnDeployment deployment(303, timeline);
  deployment.run_cycles(40);
  for (ItemIdx i = 0; i < deployment.workload.num_items(); ++i) {
    EXPECT_FALSE(deployment.tracker->reached(i).test(5));
  }
}

TEST(Churn, RotatingChurnProcessKeepsDisseminating) {
  // Continuous churn: every 5 cycles from cycle 10 to 40 the next 10-node
  // slice drops offline and the previous slice returns
  // (scenario::ChurnProcess — the same rotation the determinism suite
  // pins across thread counts).
  scenario::Timeline timeline;
  timeline.at(10, scenario::ChurnProcess{/*width=*/10, /*period=*/5, /*until=*/40});
  ChurnDeployment deployment(404, timeline);
  deployment.run_cycles(60);
  // Rotation means at most one slice (~17%) is down at a time; the swarm
  // keeps delivering to the online majority.
  const metrics::Scores scores = deployment.scores_after(12);
  EXPECT_GT(scores.recall, 0.2);
  // After `until`, everyone except the final slice is back online.
  EXPECT_GE(deployment.engine.num_active(), 50u);
}

TEST(Churn, ChurnProcessStepSemantics) {
  // The rotation primitive itself: step k takes slice k down and brings
  // slice k-1 back.
  sim::Engine engine({1, {}, {}});
  for (int i = 0; i < 30; ++i) {
    struct Idle : sim::Agent {
      void on_cycle(sim::Context&) override {}
      void on_message(sim::Context&, const net::Message&) override {}
      void publish(sim::Context&, ItemIdx, ItemId) override {}
    };
    engine.add_agent(std::make_unique<Idle>());
  }
  const scenario::ChurnProcess churn{/*width=*/10, /*period=*/5, /*until=*/40};
  churn.step(engine, 0, 30);
  EXPECT_EQ(engine.num_active(), 20u);
  EXPECT_FALSE(engine.is_active(0));
  EXPECT_TRUE(engine.is_active(10));
  churn.step(engine, 1, 30);
  EXPECT_EQ(engine.num_active(), 20u);
  EXPECT_TRUE(engine.is_active(0));
  EXPECT_FALSE(engine.is_active(10));
  churn.step(engine, 2, 30);  // wraps: slice 2 = nodes 20..29
  EXPECT_FALSE(engine.is_active(25));
  EXPECT_TRUE(engine.is_active(10));
}

}  // namespace
}  // namespace whatsup
