// Churn robustness: the paper's pitch for gossip is "simplicity of
// deployment and robustness" (§I). These tests subject a WhatsUp
// deployment to node departures and returns and check that dissemination
// and overlay maintenance survive.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "analysis/runner.hpp"
#include "dataset/survey.hpp"
#include "metrics/tracker.hpp"
#include "sim/engine.hpp"
#include "whatsup/node.hpp"

namespace whatsup {
namespace {

struct ChurnDeployment {
  explicit ChurnDeployment(std::uint64_t seed) : rng(seed), engine({seed, {}, {}}) {
    data::SurveyConfig config;
    config.base_users = 60;
    config.base_items = 90;
    config.replication = 1;
    workload = data::make_survey(config, rng);
    workload.schedule_publications(3, 45, rng);
    opinions = std::make_unique<analysis::WorkloadOpinions>(workload);

    WhatsUpConfig wu;
    wu.params.f_like = 6;
    for (NodeId v = 0; v < workload.num_users(); ++v) {
      auto agent = std::make_unique<WhatsUpAgent>(v, wu, *opinions);
      agents.push_back(agent.get());
      engine.add_agent(std::move(agent));
    }
    const std::size_t n = workload.num_users();
    for (NodeId v = 0; v < n; ++v) {
      std::vector<net::Descriptor> seed_view;
      for (int i = 0; i < wu.params.rps_view_size; ++i) {
        NodeId peer = v;
        while (peer == v) peer = static_cast<NodeId>(rng.index(n));
        seed_view.push_back(net::Descriptor{peer, -1, nullptr});
      }
      agents[v]->bootstrap_rps(std::move(seed_view));
    }
    tracker = std::make_unique<metrics::Tracker>(n, workload.num_items());
    tracker->attach(engine);
    for (const data::NewsSpec& spec : workload.news) {
      calendar[spec.publish_at].push_back(spec.index);
    }
  }

  void run_cycle() {
    if (const auto it = calendar.find(engine.now()); it != calendar.end()) {
      for (ItemIdx item : it->second) {
        if (engine.is_active(workload.news[item].source)) {
          engine.publish(workload.news[item].source, item, workload.news[item].id);
        }
      }
    }
    engine.run_cycle();
  }

  metrics::Scores scores_after(Cycle published_from) const {
    std::vector<ItemIdx> measured;
    for (const data::NewsSpec& spec : workload.news) {
      if (spec.publish_at >= published_from) measured.push_back(spec.index);
    }
    return metrics::compute_scores(workload, tracker->reached_sets(), measured);
  }

  Rng rng;
  sim::Engine engine;
  data::Workload workload;
  std::unique_ptr<analysis::WorkloadOpinions> opinions;
  std::unique_ptr<metrics::Tracker> tracker;
  std::vector<WhatsUpAgent*> agents;
  std::map<Cycle, std::vector<ItemIdx>> calendar;
};

TEST(Churn, DisseminationSurvivesMassDeparture) {
  ChurnDeployment deployment(101);
  for (int c = 0; c < 20; ++c) deployment.run_cycle();
  // 25% of the network leaves abruptly (no goodbye messages).
  for (NodeId v = 0; v < 15; ++v) deployment.engine.set_active(v, false);
  for (int c = 0; c < 40; ++c) deployment.run_cycle();
  // Items published after the departure still reach a meaningful share of
  // the surviving interested users (gossip redundancy routes around the
  // dead view entries) — dissemination does not collapse.
  const metrics::Scores scores = deployment.scores_after(22);
  EXPECT_GT(scores.recall, 0.2);
}

TEST(Churn, ReturningNodesReintegrate) {
  ChurnDeployment deployment(202);
  for (int c = 0; c < 15; ++c) deployment.run_cycle();
  for (NodeId v = 0; v < 10; ++v) deployment.engine.set_active(v, false);
  for (int c = 0; c < 10; ++c) deployment.run_cycle();
  for (NodeId v = 0; v < 10; ++v) deployment.engine.set_active(v, true);
  for (int c = 0; c < 30; ++c) deployment.run_cycle();
  // Returned nodes keep receiving: their RPS/WUP views refill and fresh
  // items reach them again.
  std::size_t received_late = 0;
  for (const data::NewsSpec& spec : deployment.workload.news) {
    if (spec.publish_at < 30) continue;
    for (NodeId v = 0; v < 10; ++v) {
      received_late += deployment.tracker->reached(spec.index).test(v);
    }
  }
  EXPECT_GT(received_late, 10u);
}

TEST(Churn, DepartedNodesReceiveNothing) {
  ChurnDeployment deployment(303);
  deployment.engine.set_active(5, false);
  for (int c = 0; c < 40; ++c) deployment.run_cycle();
  for (ItemIdx i = 0; i < deployment.workload.num_items(); ++i) {
    EXPECT_FALSE(deployment.tracker->reached(i).test(5));
  }
}

}  // namespace
}  // namespace whatsup
